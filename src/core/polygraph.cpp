#include "core/polygraph.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>

#include "browser/engine_timelines.h"
#include "browser/release_db.h"
#include "obs/metrics_registry.h"
#include "obs/prof/prof.h"

namespace bp::core {

PolygraphConfig PolygraphConfig::production() {
  PolygraphConfig config;
  config.feature_indices =
      browser::FeatureCatalog::instance().final_indices();
  return config;
}

void ClusterTable::assign(const ua::UserAgent& ua, std::size_t cluster) {
  const std::uint32_t key = ua.key();
  const auto it = ua_to_cluster_.find(key);
  if (it != ua_to_cluster_.end()) {
    if (it->second == cluster) return;
    // Re-assignment: swap-remove from the old cluster's list via the
    // per-UA position index.  (A remove_if scan here made bulk table
    // rebuilds — every retrain reassigns most UAs — quadratic.)
    auto& old_list = cluster_to_uas_[it->second];
    const std::size_t pos = position_in_cluster_.at(key);
    old_list[pos] = old_list.back();
    old_list.pop_back();
    if (pos < old_list.size()) {
      position_in_cluster_[old_list[pos].key()] = pos;
    }
    it->second = cluster;
  } else {
    ua_to_cluster_.emplace(key, cluster);
  }
  auto& list = cluster_to_uas_[cluster];
  position_in_cluster_[key] = list.size();
  list.push_back(ua);
}

std::optional<std::size_t> ClusterTable::expected_cluster(
    const ua::UserAgent& ua) const {
  const auto it = ua_to_cluster_.find(ua.key());
  if (it == ua_to_cluster_.end()) return std::nullopt;
  return it->second;
}

const std::vector<ua::UserAgent>& ClusterTable::user_agents_in(
    std::size_t cluster) const {
  const auto it = cluster_to_uas_.find(cluster);
  return it != cluster_to_uas_.end() ? it->second : empty_;
}

std::vector<std::size_t> ClusterTable::populated_clusters() const {
  std::vector<std::size_t> out;
  for (const auto& [cluster, uas] : cluster_to_uas_) {
    if (!uas.empty()) out.push_back(cluster);
  }
  return out;
}

Polygraph::Polygraph(PolygraphConfig config) : config_(std::move(config)) {
  if (config_.feature_indices.empty()) {
    config_.feature_indices =
        browser::FeatureCatalog::instance().final_indices();
  }
}

TrainingSummary Polygraph::train(const ml::Matrix& features,
                                 const std::vector<ua::UserAgent>& user_agents,
                                 const obs::ObsContext* obs) {
  assert(features.rows() == user_agents.size());
  assert(features.cols() == config_.feature_indices.size());
  TrainingSummary summary;
  summary.rows_total = features.rows();

  using Clock = std::chrono::steady_clock;
  const auto stage_start = Clock::now();
  auto lap = [last = stage_start]() mutable {
    const auto now = Clock::now();
    const double seconds = std::chrono::duration<double>(now - last).count();
    last = now;
    return seconds;
  };

  // Optional tracing: one span per stage under the caller's trace id.
  // Span ids are fixed (root 1, stages 2..6) so retrain traces render
  // deterministically; see obs/trace.h.
  obs::TraceSink* trace = obs != nullptr ? obs->trace : nullptr;
  const std::uint64_t trace_id = obs != nullptr ? obs->trace_id : 0;
  const std::int64_t train_begin_us = obs::steady_now_us();
  std::int64_t stage_begin_us = train_begin_us;
  auto emit_span = [&](const char* name, std::uint32_t span_id) {
    const std::int64_t now_us = obs::steady_now_us();
    if (trace != nullptr) {
      trace->record({trace_id, span_id, /*parent_id=*/1, name,
                     stage_begin_us, now_us});
    }
    stage_begin_us = now_us;
  };

  // Profiler attribution: the active stage is marked by re-emplacing one
  // tag scope (destroy pops the old tag, construct pushes the new one),
  // so samples landing in this thread carry train.<stage>.
  PROF_SCOPE("train");
  std::optional<obs::prof::TagScope> stage_scope;
  stage_scope.emplace("train.scale");

  // 1. Scale.  Deviation-based columns are standardized; time-based
  //    presence bits pass through (§6.4.1).
  const auto& catalog = browser::FeatureCatalog::instance();
  std::vector<bool> scale_column;
  scale_column.reserve(config_.feature_indices.size());
  for (std::size_t idx : config_.feature_indices) {
    scale_column.push_back(catalog.spec(idx).kind ==
                           browser::FeatureKind::kDeviationBased);
  }
  scaler_.fit(features, scale_column);
  const ml::Matrix scaled = scaler_.transform(features);
  summary.timings.scale = lap();
  emit_span("scale", 2);
  stage_scope.emplace("train.filter");

  // 2. Outlier filtering (§6.4.1).
  ml::IsolationForestConfig forest_config;
  forest_config.seed = config_.seed ^ 0xF0E1D2C3ULL;
  ml::IsolationForest forest(forest_config);
  forest.fit(scaled);
  const std::vector<bool> keep =
      forest.inlier_mask(scaled, config_.contamination);
  const ml::Matrix filtered = scaled.filter_rows(keep);
  summary.rows_outliers_removed = scaled.rows() - filtered.rows();

  std::vector<ua::UserAgent> kept_uas;
  kept_uas.reserve(filtered.rows());
  for (std::size_t i = 0; i < user_agents.size(); ++i) {
    if (keep[i]) kept_uas.push_back(user_agents[i]);
  }
  summary.timings.filter = lap();
  emit_span("filter", 3);
  stage_scope.emplace("train.pca");

  // 3. PCA (§6.4.2).
  const ml::Matrix projected =
      pca_.fit_transform(filtered, config_.pca_components);
  summary.timings.pca = lap();
  emit_span("pca", 4);
  stage_scope.emplace("train.kmeans");

  // 4. k-means (§6.4.3).
  ml::KMeansConfig kconfig;
  kconfig.k = config_.k;
  kconfig.seed = config_.seed;
  kconfig.n_init = config_.kmeans_restarts;
  kmeans_ = ml::KMeans(kconfig);
  kmeans_.fit(projected);
  summary.wcss = kmeans_.inertia();
  summary.timings.kmeans = lap();
  emit_span("kmeans", 5);
  stage_scope.emplace("train.table");

  // 5. Majority-cluster table + training accuracy (Appendix-4 Formula 1).
  std::vector<std::uint32_t> keys;
  keys.reserve(kept_uas.size());
  for (const auto& ua : kept_uas) keys.push_back(ua.key());
  const ml::ClusterAccuracy accuracy =
      ml::clustering_accuracy(keys, kmeans_.labels());
  summary.clustering_accuracy = accuracy.row_accuracy;

  table_ = ClusterTable();
  std::map<std::uint32_t, std::size_t> label_rows;
  for (std::uint32_t key : keys) ++label_rows[key];
  std::map<std::uint32_t, ua::UserAgent> key_to_ua;
  for (const auto& ua : kept_uas) key_to_ua.emplace(ua.key(), ua);

  for (const auto& [key, cluster] : accuracy.majority) {
    table_.assign(key_to_ua.at(key), cluster);
  }

  // 6. Rare-label re-alignment (§6.4.3): user-agents with too few rows
  //    get their cluster from the legitimate baseline fingerprint of the
  //    candidate-generation stage rather than from noisy live data.
  if (config_.align_rare_labels) {
    const auto& db = browser::ReleaseDatabase::instance();
    for (const auto& [key, cluster] : accuracy.majority) {
      if (label_rows[key] >= config_.rare_label_min_rows) continue;
      const ua::UserAgent ua = key_to_ua.at(key);
      const auto* release = db.find(ua);
      if (release == nullptr) continue;
      const std::vector<double> baseline = baseline_features(*release);
      const std::size_t aligned = predict_cluster(baseline);
      if (aligned != cluster) {
        table_.assign(ua, aligned);
        ++summary.labels_realigned;
      }
    }
  }
  summary.timings.table = lap();
  emit_span("table", 6);
  stage_scope.reset();
  summary.timings.total =
      std::chrono::duration<double>(Clock::now() - stage_start).count();

  if (trace != nullptr) {
    trace->record({trace_id, /*span_id=*/1, /*parent_id=*/0, "train",
                   train_begin_us, stage_begin_us});
  }
  if (obs != nullptr && obs->registry != nullptr) {
    obs::MetricsRegistry& r = *obs->registry;
    r.counter("bp_training_runs_total", "training pipeline runs").increment();
    r.counter("bp_training_rows_total", "training rows consumed")
        .add(summary.rows_total);
    r.counter("bp_training_outliers_removed_total",
              "rows discarded by the isolation-forest filter")
        .add(summary.rows_outliers_removed);
    r.counter("bp_training_labels_realigned_total",
              "rare-UA labels re-aligned to baseline fingerprints")
        .add(summary.labels_realigned);
    r.gauge("bp_training_last_accuracy",
            "clustering accuracy of the last training run")
        .set(summary.clustering_accuracy);
    r.gauge("bp_training_last_wcss", "k-means inertia of the last run")
        .set(summary.wcss);
    r.gauge("bp_training_scale_seconds", "scaler fit+transform, last run")
        .set(summary.timings.scale);
    r.gauge("bp_training_filter_seconds", "outlier filter, last run")
        .set(summary.timings.filter);
    r.gauge("bp_training_pca_seconds", "PCA, last run")
        .set(summary.timings.pca);
    r.gauge("bp_training_kmeans_seconds", "k-means restarts, last run")
        .set(summary.timings.kmeans);
    r.gauge("bp_training_table_seconds", "cluster table, last run")
        .set(summary.timings.table);
    r.gauge("bp_training_total_seconds", "whole pipeline, last run")
        .set(summary.timings.total);
  }
  return summary;
}

std::size_t Polygraph::predict_cluster(std::span<const double> features) const {
  ScoringScratch scratch;
  return predict_cluster(features, scratch);
}

std::size_t Polygraph::predict_cluster(std::span<const double> features,
                                       ScoringScratch& scratch) const {
  return predict_cluster(features, scratch, nullptr);
}

std::size_t Polygraph::predict_cluster(std::span<const double> features,
                                       ScoringScratch& scratch,
                                       double* distance2) const {
  assert(trained());
  assert(features.size() == config_.feature_indices.size());
  scratch.scaled_.resize(features.size());
  scratch.projected_.resize(pca_.n_components());
  scaler_.transform_row(features, scratch.scaled_);
  pca_.transform_row(scratch.scaled_, scratch.projected_);
  return kmeans_.predict_one(scratch.projected_, distance2);
}

std::vector<std::size_t> Polygraph::predict_clusters(
    const ml::Matrix& features) const {
  assert(trained());
  const ml::Matrix projected = pca_.transform(scaler_.transform(features));
  return kmeans_.predict(projected);
}

int Polygraph::risk_factor(const ua::UserAgent& session_ua,
                           std::size_t predicted_cluster) const {
  // Algorithm 1.  An empty (noise) cluster leaves the minimum at its
  // initial value; we cap it at the vendor distance — no known-good UA
  // resembles the session at all.
  int risk = std::numeric_limits<int>::max();
  for (const ua::UserAgent& ua : table_.user_agents_in(predicted_cluster)) {
    int distance = 0;
    if (!ua::same_vendor(session_ua.vendor, ua.vendor)) {
      distance = config_.vendor_distance;
    } else {
      const int diff = std::abs(session_ua.major_version - ua.major_version);
      distance = diff / config_.version_divisor;
    }
    risk = std::min(risk, distance);
  }
  return risk == std::numeric_limits<int>::max() ? config_.vendor_distance
                                                 : risk;
}

Detection Polygraph::score(std::span<const double> features,
                           const ua::UserAgent& claimed) const {
  ScoringScratch scratch;
  return score(features, claimed, scratch);
}

Detection Polygraph::score(std::span<const std::int32_t> features,
                           const ua::UserAgent& claimed,
                           ScoringScratch& scratch) const {
  scratch.features_.resize(features.size());
  std::copy(features.begin(), features.end(), scratch.features_.begin());
  return score(std::span<const double>(scratch.features_), claimed, scratch);
}

Detection Polygraph::score(std::span<const double> features,
                           const ua::UserAgent& claimed,
                           ScoringScratch& scratch) const {
  Detection detection;
  detection.predicted_cluster =
      predict_cluster(features, scratch, &detection.centroid_distance2);
  detection.expected_cluster = table_.expected_cluster(claimed);
  if (detection.expected_cluster.has_value() &&
      *detection.expected_cluster != detection.predicted_cluster) {
    detection.flagged = true;
    detection.risk_factor = risk_factor(claimed, detection.predicted_cluster);
  }
  return detection;
}

template <typename T>
void Polygraph::score_batch_impl(std::span<const std::span<const T>> rows,
                                 std::span<const ua::UserAgent> claims,
                                 std::span<Detection> out,
                                 BatchScratch& scratch) const {
  assert(trained());
  assert(claims.size() == rows.size() && out.size() == rows.size());
  constexpr std::size_t kBlock = kScoreBatchBlock;
  const std::size_t n_features = config_.feature_indices.size();
  const std::size_t n_components = pca_.n_components();
  const std::size_t n_centroids = kmeans_.centroids().rows();
  const double* const means = scaler_.means().data();
  const double* const stddevs = scaler_.stddevs().data();
  const double* const pca_mean = pca_.mean().data();
  const ml::Matrix& components = pca_.components();  // n_features x p
  const ml::Matrix& centroids = kmeans_.centroids();  // k x p

  scratch.panel_.resize(n_features * kBlock);
  scratch.centered_.resize(kBlock);
  scratch.projected_.resize(n_components * kBlock);
  scratch.distance_.resize(kBlock);
  scratch.best_d2_.resize(kBlock);
  scratch.best_cluster_.resize(kBlock);
  double* const panel = scratch.panel_.data();
  double* const centered = scratch.centered_.data();
  double* const projected = scratch.projected_.data();
  double* const distance = scratch.distance_.data();
  double* const best_d2 = scratch.best_d2_.data();
  std::uint32_t* const best_cluster = scratch.best_cluster_.data();

  for (std::size_t base = 0; base < rows.size(); base += kBlock) {
    const std::size_t n = std::min(kBlock, rows.size() - base);
    const T* row_ptr[kBlock];
    for (std::size_t r = 0; r < n; ++r) {
      assert(rows[base + r].size() == n_features);
      row_ptr[r] = rows[base + r].data();
    }

    // Gather + scale: transpose the block into feature-major lanes,
    // fusing the StandardScaler (same expression as transform_row, so
    // identical rounding).
    for (std::size_t c = 0; c < n_features; ++c) {
      const double mean = means[c];
      const double stddev = stddevs[c];
      double* const lane = panel + c * kBlock;
      for (std::size_t r = 0; r < n; ++r) {
        lane[r] = (static_cast<double>(row_ptr[r][c]) - mean) / stddev;
      }
    }

    // PCA: accumulate components in feature order — per row this is the
    // scalar transform_row's exact reduction order.  (The scalar path
    // skips exactly-zero centered values; adding their +/-0.0
    // contribution here can only change the sign of a zero accumulator,
    // which the squaring below erases.)
    std::fill_n(projected, n_components * kBlock, 0.0);
    for (std::size_t c = 0; c < n_features; ++c) {
      const double center = pca_mean[c];
      const double* const lane = panel + c * kBlock;
      for (std::size_t r = 0; r < n; ++r) {
        centered[r] = lane[r] - center;
      }
      const auto weights = components.row(c);  // n_components entries
      for (std::size_t j = 0; j < n_components; ++j) {
        const double weight = weights[j];
        double* const proj = projected + j * kBlock;
        for (std::size_t r = 0; r < n; ++r) {
          proj[r] += centered[r] * weight;
        }
      }
    }

    // Nearest centroid: full distance per centroid, strict < argmin —
    // the same winner and the same fully-accumulated winning distance
    // as squared_distance_bounded with early exit (a truncated sum is
    // already over the bound, so it can never win; ties keep the lower
    // centroid index in both paths).
    for (std::size_t r = 0; r < n; ++r) {
      best_d2[r] = std::numeric_limits<double>::max();
      best_cluster[r] = 0;
    }
    for (std::size_t c = 0; c < n_centroids; ++c) {
      const auto centroid = centroids.row(c);
      std::fill_n(distance, n, 0.0);
      for (std::size_t j = 0; j < n_components; ++j) {
        const double coord = centroid[j];
        const double* const proj = projected + j * kBlock;
        for (std::size_t r = 0; r < n; ++r) {
          const double diff = proj[r] - coord;
          distance[r] += diff * diff;
        }
      }
      for (std::size_t r = 0; r < n; ++r) {
        if (distance[r] < best_d2[r]) {
          best_d2[r] = distance[r];
          best_cluster[r] = static_cast<std::uint32_t>(c);
        }
      }
    }

    // Verdict tail — statement for statement the scalar score().
    for (std::size_t r = 0; r < n; ++r) {
      Detection detection;
      detection.predicted_cluster = best_cluster[r];
      detection.centroid_distance2 = best_d2[r];
      detection.expected_cluster = table_.expected_cluster(claims[base + r]);
      if (detection.expected_cluster.has_value() &&
          *detection.expected_cluster != detection.predicted_cluster) {
        detection.flagged = true;
        detection.risk_factor =
            risk_factor(claims[base + r], detection.predicted_cluster);
      }
      out[base + r] = detection;
    }
  }
}

void Polygraph::score_batch(std::span<const std::span<const std::int32_t>> rows,
                            std::span<const ua::UserAgent> claims,
                            std::span<Detection> out,
                            BatchScratch& scratch) const {
  score_batch_impl(rows, claims, out, scratch);
}

void Polygraph::score_batch(std::span<const std::span<const double>> rows,
                            std::span<const ua::UserAgent> claims,
                            std::span<Detection> out,
                            BatchScratch& scratch) const {
  score_batch_impl(rows, claims, out, scratch);
}

Polygraph Polygraph::from_parts(PolygraphConfig config,
                                ml::StandardScaler scaler, ml::Pca pca,
                                ml::KMeans kmeans, ClusterTable table) {
  Polygraph model(std::move(config));
  model.scaler_ = std::move(scaler);
  model.pca_ = std::move(pca);
  model.kmeans_ = std::move(kmeans);
  model.table_ = std::move(table);
  return model;
}

std::vector<double> Polygraph::baseline_features(
    const browser::BrowserRelease& release) const {
  const auto& baseline =
      browser::baseline_candidates(release.engine, release.engine_version);
  std::vector<double> out;
  out.reserve(config_.feature_indices.size());
  for (std::size_t idx : config_.feature_indices) {
    out.push_back(static_cast<double>(baseline[idx]));
  }
  return out;
}

}  // namespace bp::core
