// Web-scale session synthesis — the reproduction's stand-in for FinOrg's
// live traffic (DESIGN.md §2).
//
// The generator produces logged-in purchase-portal sessions with:
//   * a date-aware browser popularity model (recent releases dominate,
//     with a straggler tail that keeps multi-year-old versions alive at
//     the <100-row level the paper observed for Chrome 81 / Edge 17);
//   * environment noise per §6.3 (extensions, Firefox about:config,
//     Brave and Tor lookalikes);
//   * a small fraud-browser population with spoofed victim user-agents;
//   * the FinOrg risk tags (Untrusted_IP / Untrusted_Cookie / ATO) with
//     base rates calibrated to Table 4's "All users" row and elevated
//     conditional rates for fraud and privacy-browser sessions.
#pragma once

#include <cstdint>

#include "fraudsim/fraud_browser.h"
#include "traffic/dataset.h"
#include "util/date.h"
#include "util/rng.h"

namespace bp::traffic {

struct TagRates {
  double untrusted_ip = 0.0;
  double untrusted_cookie = 0.0;
  double ato = 0.0;
};

struct TrafficConfig {
  std::uint64_t seed = 20230301;
  std::size_t n_sessions = 205'000;

  // §6.2 / §7.1 training window: March 1 to mid-July 2023 (ending just
  // before the Chrome/Firefox 115 releases, as the paper's Table 3 does).
  bp::util::Date start_date = bp::util::Date::from_ymd(2023, 3, 1);
  bp::util::Date end_date = bp::util::Date::from_ymd(2023, 7, 2);

  // Vendor shares of desktop traffic (remainder is rounded into Chrome).
  double chrome_share = 0.58;
  double edge_share = 0.145;
  double firefox_share = 0.26;
  double edge_legacy_share = 0.004;

  // Popularity decay of a release with age, plus a uniform straggler
  // tail over every available release.
  double release_age_tau_days = 55.0;
  double straggler_tail = 0.018;

  // Environment-noise probabilities (conditioned on vendor).
  double p_duckduckgo = 0.012;        // Chrome-family
  double p_generic_extension = 0.020; // Chrome-family
  double p_ff_no_service_workers = 0.012;
  double p_ff_transform_getters = 0.004;

  // Update inconsistency (§7.1's explanation for low-risk flags): the UA
  // header already reports the next major while the engine still runs the
  // previous build — staged binary rollouts do this for a few days.
  double p_update_inconsistency = 0.028;

  // Privacy browsers presenting upstream UAs.
  double p_brave_standard = 0.0040;   // fraction of ALL sessions
  double p_brave_aggressive = 0.0002;
  double p_tor = 0.0001;

  // Fraud-browser sessions (categories weighted per Table 1 prevalence;
  // includes category 3/4 operators Browser Polygraph cannot see).
  double p_fraud = 0.0031;
  double fraud_cat12_weight = 0.55;   // share of fraud run on cat-1/2 tools

  // Stolen profiles are stale: marketplace inventory was harvested weeks
  // to months before use, so victim UAs skew older than live traffic.
  double victim_staleness_multiplier = 2.5;  // on release_age_tau_days
  double victim_straggler_tail = 0.10;

  // Tag rates by session kind (Table 4 "All users" row emerges from the
  // mixture).
  TagRates benign_rates{0.508, 0.488, 0.0038};
  // Mid-update devices skew toward fresh installs / roaming networks, so
  // their Untrusted_IP / Untrusted_Cookie rates sit above the base rate.
  TagRates update_inconsistency_rates{0.65, 0.62, 0.0040};
  TagRates privacy_rates{0.85, 0.80, 0.0045};
  TagRates fraud_rates{0.95, 0.92, 0.030};
  // Category-1 tools (Linken Sphere tier) are the professionals' choice;
  // their operators complete the takeover within the 72h tag window far
  // more often than commodity category-2 users.
  double fraud_category1_ato = 0.075;
};

class SessionGenerator {
 public:
  explicit SessionGenerator(TrafficConfig config = {});

  // Generate a full dataset.  `stored_indices` defaults to every
  // candidate feature; pass a subset (e.g. the production 28 plus the
  // Appendix-4 extras) to keep large runs memory-lean.
  //
  // Batch generation is sharded: sessions are produced in fixed-size
  // blocks of kGenerateShard, each drawing from its own RNG stream
  // split off the config seed, and the shards run in parallel on the
  // bp::util thread pool.  Because the shard decomposition and streams
  // depend only on the seed, the dataset is byte-identical at any
  // BP_THREADS setting.  (The shard streams differ from the streaming
  // next_session() stream; session ids, which are a pure function of
  // the row index, coincide between the two paths.)
  Dataset generate();
  Dataset generate(std::vector<std::size_t> stored_indices);

  // One session at a time (streaming use; examples use this).
  SessionRecord next_session(const std::vector<std::size_t>& stored_indices);

  const TrafficConfig& config() const noexcept { return config_; }

  // Fixed batch shard size (sessions per RNG stream).
  static constexpr std::size_t kGenerateShard = 1024;

 private:
  SessionRecord synthesize(const std::vector<std::size_t>& stored_indices,
                           bp::util::Rng& rng, std::uint64_t session_index);
  SessionRecord make_benign(const std::vector<std::size_t>& stored_indices,
                            bp::util::Date date, bp::util::Rng& rng,
                            std::uint64_t session_index);
  SessionRecord make_privacy(const std::vector<std::size_t>& stored_indices,
                             bp::util::Date date, bool aggressive_brave,
                             bool tor, bp::util::Rng& rng,
                             std::uint64_t session_index);
  SessionRecord make_fraud(const std::vector<std::size_t>& stored_indices,
                           bp::util::Date date, bp::util::Rng& rng,
                           std::uint64_t session_index);

  const browser::BrowserRelease* sample_release(ua::Vendor vendor,
                                                bp::util::Date date,
                                                double tau_days,
                                                double straggler_tail,
                                                bp::util::Rng& rng);
  ua::Vendor sample_vendor(bp::util::Rng& rng);
  void assign_tags(SessionRecord& record, bp::util::Rng& rng);
  std::string session_id_for(std::uint64_t session_index) const;

  TrafficConfig config_;
  bp::util::Rng rng_;
  std::uint64_t session_counter_ = 0;
};

// Convenience: the candidate indices worth persisting for the paper's
// experiments — the production 28 plus every Appendix-4 extension
// feature (42 total).
std::vector<std::size_t> experiment_feature_indices();

}  // namespace bp::traffic
