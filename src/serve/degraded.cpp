#include "serve/degraded.h"

#include <algorithm>
#include <cstdlib>

#include "browser/release_db.h"

namespace bp::serve {

core::Detection degraded_score(const ua::UserAgent& claimed,
                               int vendor_distance, int version_divisor) {
  const auto& db = browser::ReleaseDatabase::instance();
  core::Detection detection;  // expected_cluster stays nullopt: no model

  if (db.find(claimed) != nullptr) return detection;  // plausible UA

  // Version unknown for this vendor: distance to the nearest shipped
  // version, scaled like Algorithm 1's version term.
  int best_gap = -1;
  for (const auto& release : db.releases()) {
    if (!ua::same_vendor(release.vendor, claimed.vendor)) continue;
    const int gap = std::abs(release.version - claimed.major_version);
    if (best_gap < 0 || gap < best_gap) best_gap = gap;
  }
  detection.flagged = true;
  if (best_gap < 0) {
    detection.risk_factor = vendor_distance;  // vendor never shipped at all
  } else {
    detection.risk_factor =
        std::max(1, best_gap / std::max(1, version_divisor));
  }
  return detection;
}

}  // namespace bp::serve
