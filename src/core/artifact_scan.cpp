#include "core/artifact_scan.h"

#include <cctype>

namespace bp::core {

namespace {

bool iprefix(std::string_view name, std::string_view prefix) {
  if (name.size() < prefix.size() || prefix.empty()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(name[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

ArtifactScanner ArtifactScanner::with_builtin_signatures() {
  ArtifactScanner scanner;
  scanner.add_signature({"AntBrowser", "ANTBROWSER", ""});
  scanner.add_signature({"AntBrowser", "", "antBrowser"});
  scanner.add_signature({"Linken Sphere", "", "__ls_"});
  scanner.add_signature({"ClonBrowser", "clonEnv", ""});
  scanner.add_signature({"AdsPower", "", "cdc_adspower"});
  return scanner;
}

void ArtifactScanner::add_signature(ArtifactSignature signature) {
  signatures_.push_back(std::move(signature));
}

std::vector<ArtifactMatch> ArtifactScanner::scan(
    const std::vector<std::string>& window_globals) const {
  std::vector<ArtifactMatch> matches;
  for (const std::string& name : window_globals) {
    for (const ArtifactSignature& signature : signatures_) {
      const bool hit =
          (!signature.exact_global.empty() && name == signature.exact_global) ||
          (!signature.prefix.empty() && iprefix(name, signature.prefix));
      if (hit) {
        matches.push_back(ArtifactMatch{signature.tool, name});
        break;  // one match per global is enough
      }
    }
  }
  return matches;
}

std::optional<std::string> ArtifactScanner::identify(
    const std::vector<std::string>& window_globals) const {
  const auto matches = scan(window_globals);
  if (matches.empty()) return std::nullopt;
  return matches.front().tool;
}

}  // namespace bp::core
