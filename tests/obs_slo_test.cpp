// Tests for the windowed SLO layer: TimeSeriesWindow rate/delta
// derivation, SloEngine rule evaluation with hysteresis, and the
// HealthModel fold.
//
// The load-bearing test is the determinism acceptance check: a
// scripted latency/error trace on an injected fake clock must produce
// a byte-identical kOk->kWarn->kPage->kOk transition log across runs
// AND across the number of threads feeding the underlying counters —
// alert decisions are pure in (clock ticks, snapshot values).
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/slo/health.h"
#include "obs/slo/slo_engine.h"
#include "obs/slo/time_series.h"

namespace bp::obs::slo {
namespace {

// ---------------------------- TimeSeriesWindow ----------------------------

TEST(ObsSloWindow, CounterDeltaAndRate) {
  MetricsRegistry registry;
  Counter& c = registry.counter("events_total");
  TimeSeriesWindow window(registry, 16);
  window.track("events", "events_total");

  window.sample(0);
  c.add(100);
  window.sample(1'000);
  c.add(300);
  window.sample(2'000);

  EXPECT_DOUBLE_EQ(window.latest("events"), 400.0);
  EXPECT_DOUBLE_EQ(window.delta("events", 1'000), 300.0);
  EXPECT_DOUBLE_EQ(window.delta("events", 2'000), 400.0);
  EXPECT_DOUBLE_EQ(window.rate_per_second("events", 1'000), 300.0);
  EXPECT_DOUBLE_EQ(window.rate_per_second("events", 2'000), 200.0);
}

TEST(ObsSloWindow, SumSeriesFoldsSeveralMetrics) {
  MetricsRegistry registry;
  Counter& shed = registry.counter("shed_total");
  Counter& deadline = registry.counter("deadline_total");
  TimeSeriesWindow window(registry, 8);
  window.track_sum("bad", {"shed_total", "deadline_total"});

  window.sample(0);
  shed.add(3);
  deadline.add(4);
  window.sample(1'000);
  EXPECT_DOUBLE_EQ(window.latest("bad"), 7.0);
  EXPECT_DOUBLE_EQ(window.delta("bad", 1'000), 7.0);
}

TEST(ObsSloWindow, HistogramOverThresholdSeries) {
  MetricsRegistry registry;
  const std::array<std::uint64_t, 3> bounds{10, 100, 1'000};
  Histogram& h = registry.histogram("latency_us", bounds);
  TimeSeriesWindow window(registry, 8);
  window.track_histogram_over("slow", "latency_us", 100);
  window.track("all", "latency_us");  // histogram reads as its count

  window.sample(0);
  h.observe(5);     // <= 10
  h.observe(100);   // <= 100: NOT over the 100 threshold
  h.observe(500);   // over
  h.observe(5'000); // over (open bucket)
  window.sample(1'000);

  EXPECT_DOUBLE_EQ(window.delta("slow", 1'000), 2.0);
  EXPECT_DOUBLE_EQ(window.delta("all", 1'000), 4.0);
}

TEST(ObsSloWindow, RingEvictsOldestAndDeltasFromRetainedHistory) {
  MetricsRegistry registry;
  Counter& c = registry.counter("events_total");
  TimeSeriesWindow window(registry, 3);
  window.track("events", "events_total");

  for (int tick = 0; tick < 6; ++tick) {
    window.sample(tick * 1'000);
    c.add(10);
  }
  // Retained samples: t=3000 (value 30), t=4000 (40), t=5000 (50).
  EXPECT_DOUBLE_EQ(window.latest("events"), 50.0);
  EXPECT_DOUBLE_EQ(window.delta("events", 60'000), 20.0);
  EXPECT_EQ(window.samples(), 6u);
  EXPECT_EQ(window.last_sample_ms(), 5'000);
}

TEST(ObsSloWindow, UnknownSeriesAndUnregisteredMetricsReadZero) {
  MetricsRegistry registry;
  TimeSeriesWindow window(registry, 4);
  window.track("ghost", "never_registered_total");
  window.sample(0);
  window.sample(1'000);
  EXPECT_DOUBLE_EQ(window.latest("ghost"), 0.0);
  EXPECT_DOUBLE_EQ(window.delta("ghost", 1'000), 0.0);
  EXPECT_DOUBLE_EQ(window.latest("not_tracked"), 0.0);
  EXPECT_DOUBLE_EQ(window.rate_per_second("not_tracked", 1'000), 0.0);
}

// ------------------------------- SloEngine -------------------------------

SloRule error_rule(int clear_ticks = 2) {
  SloRule rule;
  rule.name = "shed_rate";
  rule.kind = SloRule::Kind::kErrorRate;
  rule.numerator = "bad";
  rule.denominator = "total";
  rule.short_window_ms = 1'000;
  rule.warn_threshold = 0.05;
  rule.page_threshold = 0.20;
  rule.clear_ticks = clear_ticks;
  return rule;
}

TEST(ObsSlo, ErrorRateEscalatesImmediatelyAndClearsWithHysteresis) {
  MetricsRegistry registry;
  Counter& bad = registry.counter("bad");
  Counter& total = registry.counter("total");
  TimeSeriesWindow window(registry, 16);
  window.track("bad", "bad");
  window.track("total", "total");
  SloEngine engine({error_rule(/*clear_ticks=*/2)});

  const auto tick = [&](std::int64_t at_ms, std::uint64_t b,
                        std::uint64_t t) {
    bad.add(b);
    total.add(t);
    window.sample(at_ms);
    return engine.evaluate(window, at_ms);
  };

  window.sample(0);
  EXPECT_EQ(tick(1'000, 0, 100), AlertState::kOk);
  EXPECT_EQ(tick(2'000, 10, 100), AlertState::kWarn);   // 10% >= warn
  EXPECT_EQ(tick(3'000, 30, 100), AlertState::kPage);   // 30% >= page
  EXPECT_EQ(tick(4'000, 0, 100), AlertState::kPage);    // quiet 1: held
  EXPECT_EQ(tick(5'000, 0, 100), AlertState::kOk);      // quiet 2: clears
  // A single quiet tick between two breaches must NOT clear.
  EXPECT_EQ(tick(6'000, 30, 100), AlertState::kPage);
  EXPECT_EQ(tick(7'000, 0, 100), AlertState::kPage);
  EXPECT_EQ(tick(8'000, 30, 100), AlertState::kPage);

  const std::vector<AlertTransition> transitions = engine.transitions();
  ASSERT_EQ(transitions.size(), 4u);
  EXPECT_EQ(transitions[0].to, AlertState::kWarn);
  EXPECT_EQ(transitions[1].to, AlertState::kPage);
  EXPECT_EQ(transitions[2].to, AlertState::kOk);
  EXPECT_EQ(transitions[3].to, AlertState::kPage);
  EXPECT_EQ(transitions[3].from, AlertState::kOk);
}

TEST(ObsSlo, BurnRateFiresOnlyWhenBothWindowsBurn) {
  MetricsRegistry registry;
  Counter& slow = registry.counter("slow");
  Counter& total = registry.counter("total");
  TimeSeriesWindow window(registry, 16);
  window.track("slow", "slow");
  window.track("total", "total");

  SloRule rule;
  rule.name = "latency_burn";
  rule.kind = SloRule::Kind::kBurnRate;
  rule.numerator = "slow";
  rule.denominator = "total";
  rule.budget = 0.10;  // 10% of requests may miss the budget
  rule.short_window_ms = 1'000;
  rule.long_window_ms = 3'000;
  rule.warn_burn = 2.0;
  rule.page_burn = 5.0;
  rule.clear_ticks = 2;
  SloEngine engine({rule});

  const auto tick = [&](std::int64_t at_ms, std::uint64_t s,
                        std::uint64_t t) {
    slow.add(s);
    total.add(t);
    window.sample(at_ms);
    return engine.evaluate(window, at_ms);
  };

  window.sample(0);
  EXPECT_EQ(tick(1'000, 0, 100), AlertState::kOk);
  // Short window warns (20%/10% = 2x) but the long window is still
  // diluted by the clean history: burn 20/200 = 1x, no alert.
  EXPECT_EQ(tick(2'000, 20, 100), AlertState::kOk);
  // Short window burns at page level (5x) but the long window only
  // confirms warn: 70/300 = 2.3x.
  EXPECT_EQ(tick(3'000, 50, 100), AlertState::kWarn);
  EXPECT_EQ(tick(4'000, 50, 100), AlertState::kWarn);  // long: 120/300 = 4x
  EXPECT_EQ(tick(5'000, 100, 100), AlertState::kPage); // long: 200/300 = 6.7x
  EXPECT_EQ(tick(6'000, 0, 100), AlertState::kPage);   // quiet tick 1
  EXPECT_EQ(tick(7'000, 0, 100), AlertState::kOk);     // quiet tick 2: clears
}

TEST(ObsSlo, CeilingRuleTracksGaugeLevel) {
  MetricsRegistry registry;
  Gauge& staleness = registry.gauge("staleness");
  TimeSeriesWindow window(registry, 8);
  window.track("staleness", "staleness");

  SloRule rule;
  rule.name = "model_staleness";
  rule.kind = SloRule::Kind::kCeiling;
  rule.numerator = "staleness";
  rule.warn_threshold = 3.0;
  rule.page_threshold = 10.0;
  rule.clear_ticks = 1;
  SloEngine engine({rule});

  const auto tick = [&](std::int64_t at_ms, double level) {
    staleness.set(level);
    window.sample(at_ms);
    return engine.evaluate(window, at_ms);
  };

  EXPECT_EQ(tick(1'000, 0.0), AlertState::kOk);
  EXPECT_EQ(tick(2'000, 5.0), AlertState::kWarn);
  EXPECT_EQ(tick(3'000, 12.0), AlertState::kPage);
  EXPECT_EQ(tick(4'000, 0.0), AlertState::kOk);  // clear_ticks=1
}

// The acceptance check: a scripted latency/error trace over a fake
// clock yields a byte-identical transition log no matter how many
// threads feed the instruments and no matter how often it is re-run.
TEST(ObsSlo, TransitionLogByteIdenticalAcrossRunsAndThreadCounts) {
  const std::array<std::uint64_t, 3> bounds{1'000, 10'000, 100'000};
  constexpr std::uint64_t kBudgetMicros = 100'000;

  // Per-tick script: {fast (50us) observations, slow (200ms)
  // observations, shed count, total submissions}.
  struct Step {
    std::uint64_t fast, slow, shed, total;
  };
  const std::vector<Step> script = {
      {100, 0, 0, 100},  {80, 20, 0, 100},  {50, 50, 2, 100},
      {50, 50, 30, 100}, {0, 100, 30, 100}, {100, 0, 0, 100},
      {100, 0, 0, 100},  {100, 0, 0, 100},
  };

  const auto run = [&](unsigned n_threads) {
    MetricsRegistry registry;
    Histogram& latency = registry.histogram("latency_us", bounds);
    Counter& shed = registry.counter("shed_total");
    Counter& total = registry.counter("submitted_total");

    TimeSeriesWindow window(registry, 32);
    window.track_histogram_over("over_budget", "latency_us", kBudgetMicros);
    window.track("answered", "latency_us");
    window.track("shed", "shed_total");
    window.track("total", "submitted_total");

    SloRule burn;
    burn.name = "latency_budget_burn";
    burn.kind = SloRule::Kind::kBurnRate;
    burn.numerator = "over_budget";
    burn.denominator = "answered";
    burn.budget = 0.10;
    burn.short_window_ms = 1'000;
    burn.long_window_ms = 3'000;
    burn.warn_burn = 2.0;
    burn.page_burn = 5.0;
    burn.clear_ticks = 2;

    SloRule shed_rate = error_rule(/*clear_ticks=*/2);
    shed_rate.name = "shed_rate";
    shed_rate.numerator = "shed";
    shed_rate.denominator = "total";

    SloEngine engine({burn, shed_rate});

    window.sample(0);
    std::int64_t now_ms = 0;
    for (const Step& step : script) {
      now_ms += 1'000;
      // Spread this tick's events across n_threads writers (distinct
      // stripe hints), then join so the fold is quiescent at sample
      // time — exactly the engine-workers-then-scrape pattern.
      std::vector<std::thread> writers;
      for (unsigned t = 0; t < n_threads; ++t) {
        writers.emplace_back([&, t] {
          const auto share = [&](std::uint64_t n) {
            return n / n_threads + (t < n % n_threads ? 1 : 0);
          };
          for (std::uint64_t i = 0; i < share(step.fast); ++i) {
            latency.observe(50, t);
          }
          for (std::uint64_t i = 0; i < share(step.slow); ++i) {
            latency.observe(200'000, t);
          }
          shed.add(share(step.shed), t);
          total.add(share(step.total), t);
        });
      }
      for (std::thread& w : writers) w.join();
      window.sample(now_ms);
      engine.evaluate(window, now_ms);
    }
    return engine.render_transitions();
  };

  const std::string log_1t = run(1);
  // The full alert lifecycle must appear, in order.
  const std::size_t warn = log_1t.find("latency_budget_burn kOk->kWarn");
  const std::size_t page = log_1t.find("latency_budget_burn kWarn->kPage");
  const std::size_t ok = log_1t.find("latency_budget_burn kPage->kOk");
  ASSERT_NE(warn, std::string::npos) << log_1t;
  ASSERT_NE(page, std::string::npos) << log_1t;
  ASSERT_NE(ok, std::string::npos) << log_1t;
  EXPECT_LT(warn, page);
  EXPECT_LT(page, ok);
  EXPECT_NE(log_1t.find("shed_rate"), std::string::npos) << log_1t;

  // Byte-identical across thread counts and across repeated runs.
  EXPECT_EQ(log_1t, run(2));
  EXPECT_EQ(log_1t, run(4));
  EXPECT_EQ(log_1t, run(1));
  EXPECT_EQ(log_1t, run(4));
}

// ------------------------------ HealthModel ------------------------------

TEST(ObsHealth, FoldVerdicts) {
  HealthSignals signals;
  signals.workers = 4;

  // No model published: live but not ready.
  {
    const HealthReport report =
        HealthModel::fold(signals, AlertState::kOk, AlertState::kOk);
    EXPECT_TRUE(report.live);
    EXPECT_FALSE(report.ready);
    EXPECT_NE(report.detail.find("nothing published"), std::string::npos);
  }
  // Model published: ready.
  signals.model_version = 3;
  {
    const HealthReport report =
        HealthModel::fold(signals, AlertState::kOk, AlertState::kOk);
    EXPECT_TRUE(report.live);
    EXPECT_TRUE(report.ready);
  }
  // Degraded mode active: not ready.
  signals.degraded_active = true;
  EXPECT_FALSE(
      HealthModel::fold(signals, AlertState::kOk, AlertState::kOk).ready);
  signals.degraded_active = false;

  // A paging readiness-gating rule pulls the instance from rotation;
  // a merely-reported page does not.
  EXPECT_FALSE(
      HealthModel::fold(signals, AlertState::kPage, AlertState::kPage).ready);
  EXPECT_TRUE(
      HealthModel::fold(signals, AlertState::kOk, AlertState::kPage).ready);
  EXPECT_EQ(HealthModel::fold(signals, AlertState::kOk, AlertState::kPage)
                .worst_alert,
            AlertState::kPage);

  // Whole pool stalled: not live (and therefore not ready).
  signals.stalled_workers = 4;
  {
    const HealthReport report =
        HealthModel::fold(signals, AlertState::kOk, AlertState::kOk);
    EXPECT_FALSE(report.live);
    EXPECT_FALSE(report.ready);
  }
  // One stalled worker of four: degraded throughput, still live.
  signals.stalled_workers = 1;
  EXPECT_TRUE(
      HealthModel::fold(signals, AlertState::kOk, AlertState::kOk).live);
}

TEST(ObsHealth, EvaluatePullsSignalsAndSloState) {
  MetricsRegistry registry;
  Gauge& staleness = registry.gauge("staleness");
  TimeSeriesWindow window(registry, 8);
  window.track("staleness", "staleness");

  SloRule rule;
  rule.name = "staleness_ceiling";
  rule.kind = SloRule::Kind::kCeiling;
  rule.numerator = "staleness";
  rule.page_threshold = 5.0;
  rule.clear_ticks = 1;
  rule.gate_readiness = true;
  SloEngine slo({rule});

  HealthSignals signals;
  signals.model_version = 1;
  signals.workers = 2;
  HealthModel model([&] { return signals; }, &slo);

  EXPECT_TRUE(model.evaluate().ready);

  staleness.set(9.0);
  window.sample(1'000);
  slo.evaluate(window, 1'000);
  const HealthReport paged = model.evaluate();
  EXPECT_TRUE(paged.live);
  EXPECT_FALSE(paged.ready);  // gating rule at kPage
  EXPECT_EQ(paged.worst_alert, AlertState::kPage);

  staleness.set(0.0);
  window.sample(2'000);
  slo.evaluate(window, 2'000);
  EXPECT_TRUE(model.evaluate().ready);
}

}  // namespace
}  // namespace bp::obs::slo
