# Empty compiler generated dependencies file for bp_fraudsim.
# This may be replaced when dependencies are built.
