#include "net/socket_ops.h"

#include <cerrno>
#include <thread>

#include "util/fault.h"

namespace bp::net::sockops {

ssize_t recv_some(int fd, void* buf, std::size_t len) {
  if (FAULT_POINT(kFaultRecvStall)) {
    std::this_thread::sleep_for(kInjectedStall);
  }
  if (FAULT_POINT(kFaultRecvReset)) {
    errno = ECONNRESET;
    return -1;
  }
  if (FAULT_POINT(kFaultRecvEintr)) {
    errno = EINTR;
    return -1;
  }
  if (len > 1 && FAULT_POINT(kFaultRecvShort)) len = 1;
  return ::recv(fd, buf, len, 0);
}

ssize_t send_some(int fd, const void* buf, std::size_t len) {
  if (FAULT_POINT(kFaultSendStall)) {
    std::this_thread::sleep_for(kInjectedStall);
  }
  if (FAULT_POINT(kFaultSendReset)) {
    errno = ECONNRESET;
    return -1;
  }
  if (FAULT_POINT(kFaultSendEintr)) {
    errno = EINTR;
    return -1;
  }
  if (len > 1 && FAULT_POINT(kFaultSendPartial)) len = 1;
  return ::send(fd, buf, len, MSG_NOSIGNAL);
}

int connect_fd(int fd, const sockaddr* addr, socklen_t len) {
  if (FAULT_POINT(kFaultConnect)) {
    errno = ECONNREFUSED;
    return -1;
  }
  return ::connect(fd, addr, len);
}

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = send_some(fd, data.data() + sent, data.size() - sent);
    if (n < 0 && errno == EINTR) continue;  // a signal is not an error
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void set_recv_timeout(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void set_send_timeout(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void set_io_timeout(int fd, std::chrono::milliseconds timeout) {
  set_recv_timeout(fd, timeout);
  set_send_timeout(fd, timeout);
}

}  // namespace bp::net::sockops
