# Empty dependencies file for bench_table5_fraud_browsers.
# This may be replaced when dependencies are built.
