#!/usr/bin/env bash
# Tier-1 verification: full build + test suite + training-bench smoke
# run, plus an optional sanitizer pass over the concurrency tests
# (serving tier and the parallel training substrate).
#
#   ./scripts/tier1.sh                  # standard build + ctest + smoke
#   BP_SANITIZE=thread ./scripts/tier1.sh   # ... + TSan concurrency pass
#   BP_SANITIZE=address ./scripts/tier1.sh  # ... + ASan concurrency pass
set -euo pipefail
cd "$(dirname "$0")/.."

case "${BP_SANITIZE:-}" in
  "" | thread | address ) ;;
  * )
    echo "BP_SANITIZE must be 'thread' or 'address', got '${BP_SANITIZE}'" >&2
    exit 2
    ;;
esac

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "== training-throughput bench smoke (determinism gate) =="
./build/bench/bench_training_throughput --smoke /tmp/bp_bench_training_smoke.json

echo "== net-saturation bench smoke (zero-loss gate over real TCP) =="
./build/bench/bench_net_saturation --smoke /tmp/bp_bench_net_smoke.json

echo "== serving-throughput bench smoke (cache hit-rate + equivalence gate) =="
./build/bench/bench_serving_throughput --smoke /tmp/bp_bench_serving_smoke.json

echo "== live introspection + scoring smoke (HTTP over ephemeral ports) =="
smoke_log=/tmp/bp_introspect_smoke.log
rm -f "${smoke_log}"
./build/examples/fraud_detection_service --listen 127.0.0.1:0 \
  --score-listen 127.0.0.1:0 --soak \
  > "${smoke_log}" 2>&1 &
svc_pid=$!
# Stop a background process: SIGINT for a graceful teardown, a bounded
# grace period, then SIGKILL so a wedged shutdown can neither hang the
# suite nor leak a process into later runs.  Returns the exit status.
stop_pid() {  # stop_pid <pid> [grace_seconds]
  local pid=$1 grace=${2:-30}
  kill -INT "${pid}" 2>/dev/null || true
  for _ in $(seq 1 $((grace * 5))); do
    kill -0 "${pid}" 2>/dev/null || break
    sleep 0.2
  done
  kill -9 "${pid}" 2>/dev/null || true
  wait "${pid}"
}
smoke_fail() {
  echo "FAIL: $1" >&2
  stop_pid "${svc_pid}" 5 > /dev/null 2>&1 || true
  exit 1
}
port=""
score_port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/^introspection server listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
         "${smoke_log}" | head -n 1)
  score_port=$(sed -n 's/^score server listening on 127\.0\.0\.1:\([0-9]*\) .*$/\1/p' \
         "${smoke_log}" | head -n 1)
  [[ -n "${port}" && -n "${score_port}" ]] && break
  sleep 0.2
done
[[ -n "${port}" ]] || smoke_fail "server never announced its introspection port"
[[ -n "${score_port}" ]] || smoke_fail "server never announced its score port"

fetch() {  # fetch <path> <want_status>: asserts status and non-empty body
  local path=$1 want=$2 code
  code=$(curl -s -o /tmp/bp_introspect_body -w '%{http_code}' \
         "http://127.0.0.1:${port}${path}" || true)
  if [[ "${code}" != "${want}" || ! -s /tmp/bp_introspect_body ]]; then
    smoke_fail "GET ${path} -> '${code}' (want ${want} + non-empty body)"
  fi
}

fetch /healthz 200
fetch /metrics 200
# /readyz answers 503 until offline training publishes the first model,
# then flips to 200; poll it across the flip.
ready=""
for _ in $(seq 1 600); do
  ready=$(curl -s -o /dev/null -w '%{http_code}' \
          "http://127.0.0.1:${port}/readyz" || true)
  [[ "${ready}" == "200" ]] && break
  sleep 0.5
done
[[ "${ready}" == "200" ]] || smoke_fail "/readyz never flipped to 200"
fetch /readyz 200
fetch /statusz 200
grep -q -- '-- build --' /tmp/bp_introspect_body \
  || smoke_fail "/statusz missing the build-info block"

# Continuous profiler: open a 15 s /profilez window in the background.
# The model just published, so the demo pipeline's live-scoring phases
# (plus the POST /score and traced-client load below) run inside the
# window; the collapsed-stack output must attribute serve-side samples
# to the scoring kernel by tag.  Collected after the trace smoke.
profilez_out=/tmp/bp_profilez.out
rm -f "${profilez_out}"
curl -s --max-time 60 "http://127.0.0.1:${port}/profilez?seconds=15" \
  > "${profilez_out}" &
profilez_pid=$!
# Typed 400 on malformed query params, uniform across the text routes.
for bad in "/profilez?seconds=bogus" "/tracez?n=bogus" "/auditz?n=bogus"; do
  code=$(curl -s -o /tmp/bp_introspect_body -w '%{http_code}' \
         "http://127.0.0.1:${port}${bad}" || true)
  [[ "${code}" == "400" ]] \
    || smoke_fail "GET ${bad} -> '${code}' (want a typed 400)"
  grep -q "bad query" /tmp/bp_introspect_body \
    || smoke_fail "GET ${bad} 400 body lacks the typed error"
done

# POST one session over the scoring plane; after /readyz the model is
# published, so the verdict must be a scored frame echoing the session.
features=$(printf '0 %.0s' $(seq 1 28)); features=${features% }
verdict=$(curl -s --data-binary "bp1|1|Chrome 112|${features}" \
          "http://127.0.0.1:${score_port}/score" || true)
case "${verdict}" in
  "bp1|1|scored|"* ) ;;
  * ) smoke_fail "POST /score -> '${verdict}' (want bp1|1|scored|...)" ;;
esac

# Cross-hop tracing: the traced score_client scores through the same
# ingress, then the SAME trace id must be assembled on both sides —
# client_call/attempt spans on the client's /tracez, the
# server_request/queue/kernel block on the service's.
client_log=/tmp/bp_trace_client.log
rm -f "${client_log}"
./build/examples/score_client --connect "127.0.0.1:${score_port}" \
  --calls 3 --listen 127.0.0.1:0 > "${client_log}" 2>&1 &
client_pid=$!
trace_fail() {
  echo "FAIL: $1" >&2
  kill -9 "${client_pid}" 2>/dev/null || true
  stop_pid "${svc_pid}" 5 > /dev/null 2>&1 || true
  exit 1
}
client_port=""
for _ in $(seq 1 100); do
  client_port=$(sed -n 's/^client introspection listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
         "${client_log}" | head -n 1)
  [[ -n "${client_port}" ]] && break
  sleep 0.2
done
[[ -n "${client_port}" ]] || trace_fail "traced client never announced its introspection port"
trace_id=$(sed -n 's/^session 1 trace=\([0-9]*\) .*/\1/p' "${client_log}" | head -n 1)
[[ -n "${trace_id}" && "${trace_id}" != "0" ]] \
  || trace_fail "traced client never printed a minted trace id"
curl -s "http://127.0.0.1:${client_port}/tracez?trace=${trace_id}" \
  | grep -q "trace=${trace_id} span=1 parent=0 name=client_call" \
  || trace_fail "client /tracez missing the client_call root for trace ${trace_id}"
curl -s "http://127.0.0.1:${port}/tracez?trace=${trace_id}" \
  | grep -q "trace=${trace_id} .*name=server_request" \
  || trace_fail "service /tracez missing server_request for trace ${trace_id}"
kill -INT "${client_pid}"
wait "${client_pid}" || trace_fail "traced client exited non-zero"
echo "cross-hop tracing smoke ok (trace ${trace_id} assembled on both sides)"

# Collect the /profilez window opened above: the collapsed-stack output
# must contain serve-side samples tagged with the scoring kernel, and
# /contentionz must name the serving sites wired this build.
wait "${profilez_pid}" || smoke_fail "/profilez capture exited non-zero"
[[ -s "${profilez_out}" ]] || smoke_fail "/profilez window came back empty"
grep -q 'serve\.kernel' "${profilez_out}" \
  || smoke_fail "/profilez window has no serve.kernel-tagged samples"
curl -s "http://127.0.0.1:${port}/contentionz" > /tmp/bp_contentionz.out \
  || smoke_fail "GET /contentionz failed"
grep -q 'site serve\.' /tmp/bp_contentionz.out \
  || smoke_fail "/contentionz names no serving contention sites"
echo "profiling smoke ok ($(grep -c 'serve\.' "${profilez_out}") serve-tagged collapsed stacks; contention sites live)"

if stop_pid "${svc_pid}" 60; then
  echo "introspection + scoring smoke ok (ports ${port}/${score_port}, clean SIGINT shutdown)"
else
  smoke_fail "service exited non-zero after SIGINT"
fi

echo "== network chaos smoke (scoring through a fault-injecting relay) =="
# The full resilience stack end-to-end as deployed: the service runs
# with BP_FAULTS arming pathological-but-lossless socket fragmentation
# on its own seam, while the chaos proxy example mutilates the wire
# between client and ingress.  The gate: scored verdicts still come
# through, and both processes shut down clean on SIGINT.
chaos_svc_log=/tmp/bp_chaos_svc.log
chaos_log=/tmp/bp_chaos_proxy.log
rm -f "${chaos_svc_log}" "${chaos_log}"
BP_FAULTS='net.sock.recv.short:0.05:11,net.sock.send.partial:0.05:12' \
  ./build/examples/fraud_detection_service --score-listen 127.0.0.1:0 \
  > "${chaos_svc_log}" 2>&1 &
chaos_svc_pid=$!
chaos_fail() {
  echo "FAIL: $1" >&2
  [[ -n "${chaos_proxy_pid:-}" ]] \
    && stop_pid "${chaos_proxy_pid}" 5 > /dev/null 2>&1 || true
  stop_pid "${chaos_svc_pid}" 5 > /dev/null 2>&1 || true
  exit 1
}
score_port=""
for _ in $(seq 1 100); do
  score_port=$(sed -n 's/^score server listening on 127\.0\.0\.1:\([0-9]*\) .*$/\1/p' \
         "${chaos_svc_log}" | head -n 1)
  [[ -n "${score_port}" ]] && break
  sleep 0.2
done
[[ -n "${score_port}" ]] || chaos_fail "service never announced its score port"

./build/examples/chaos_proxy --upstream "${score_port}" --seed 7 \
  --response-only --delay 0.05 --delay-ms 20 \
  --reset 0.02 --truncate 0.02 --corrupt 0.02 \
  > "${chaos_log}" 2>&1 &
chaos_proxy_pid=$!
proxy_port=""
for _ in $(seq 1 100); do
  proxy_port=$(sed -n 's/^chaos proxy listening on 127\.0\.0\.1:\([0-9]*\) .*$/\1/p' \
         "${chaos_log}" | head -n 1)
  [[ -n "${proxy_port}" ]] && break
  sleep 0.2
done
[[ -n "${proxy_port}" ]] || chaos_fail "chaos proxy never announced its port"

# Post sessions through the relay until a *scored* verdict echoing its
# session comes back (the model publishes partway through the demo
# pipeline; early frames are explicitly degraded, and some posts die to
# injected resets/truncations — raw curl has no retry machinery).
features=$(printf '0 %.0s' $(seq 1 28)); features=${features% }
scored=""
for i in $(seq 1 600); do
  verdict=$(curl -s --max-time 5 \
            --data-binary "bp1|${i}|Chrome 112|${features}" \
            "http://127.0.0.1:${proxy_port}/score" || true)
  case "${verdict}" in
    "bp1|${i}|scored|"* ) scored=yes; break ;;
  esac
  sleep 0.5
done
[[ -n "${scored}" ]] || chaos_fail "no scored verdict ever survived the relay"

stop_pid "${chaos_proxy_pid}" 60 || chaos_fail "chaos proxy exited non-zero"
grep -q '^chaos ledger:' "${chaos_log}" \
  || chaos_fail "chaos proxy never printed its fault ledger"
stop_pid "${chaos_svc_pid}" 60 || chaos_fail "service exited non-zero under BP_FAULTS"
echo "network chaos smoke ok (scored verdicts through an armed relay)"

if [[ -n "${BP_SANITIZE:-}" ]]; then
  san_dir="build-${BP_SANITIZE}"
  echo "== ${BP_SANITIZE} sanitizer pass over the concurrency tests =="
  cmake -B "${san_dir}" -S . -DBP_SANITIZE="${BP_SANITIZE}"
  cmake --build "${san_dir}" -j --target bp_tests
  # Covers the serving tier, the parallel training substrate, the whole
  # fault-tolerance layer — including the chaos soak, which must run
  # clean under both TSan and ASan — and the observability plane
  # (striped counters, trace ring, audit trail, the introspection HTTP
  # server scraped under mutation, and the SLO/health rollup) whose
  # lock-free hot paths are exactly what the sanitizers exist to vet,
  # plus the network scoring plane (wire parser, sharded router,
  # concurrent TCP soak over POST /score), the SoA batch-scoring
  # kernel's equivalence suite, the seqlock verdict cache, and the
  # chaos-hardening layer (socket seam, listener reaper/slow-loris,
  # resilient ScoreClient, chaos proxy, wire fuzz), and the continuous
  # profiling plane (sampler start/stop against live registered
  # workers, remote tag reads, contention sites, and the callback-gauge
  # unregistration race).
  ctest --test-dir "${san_dir}" \
    -R 'Serve|BoundedQueue|Parallel|TrainingDeterminism|Fault|RetrainSupervisor|ModelIntegrity|Chaos|Client|SockOps|HttpListener|WireFuzz|Obs|Audit|Introspect|Slo|Health|Net|Router|Batch|Cache|DistTrace|Prof|Contention' \
    --output-on-failure
fi
