#include "serve/serve_metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bp::serve {

std::size_t latency_bucket(std::uint64_t micros) noexcept {
  const auto it = std::lower_bound(kLatencyBucketBoundsMicros.begin(),
                                   kLatencyBucketBoundsMicros.end(), micros);
  return static_cast<std::size_t>(it - kLatencyBucketBoundsMicros.begin());
}

double MetricsSnapshot::latency_quantile_micros(double q) const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t c : latency_histogram) total += c;
  if (total == 0) return 0.0;
  // Guard before clamping: std::clamp on NaN would propagate it into
  // the rank arithmetic and return NaN, which every caller would then
  // compare against the budget.  Treat NaN as q = 0.
  if (std::isnan(q)) q = 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < latency_histogram.size(); ++b) {
    if (latency_histogram[b] == 0) continue;
    const std::uint64_t next = cumulative + latency_histogram[b];
    if (rank <= static_cast<double>(next)) {
      const double lo =
          b == 0 ? 0.0
                 : static_cast<double>(kLatencyBucketBoundsMicros[b - 1]);
      // Open-ended last bucket: report its lower bound.
      const double hi =
          b < kLatencyBucketBoundsMicros.size()
              ? static_cast<double>(kLatencyBucketBoundsMicros[b])
              : lo;
      const double fraction =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(latency_histogram[b]);
      return lo + (hi - lo) * fraction;
    }
    cumulative = next;
  }
  return static_cast<double>(kLatencyBucketBoundsMicros.back());
}

std::string MetricsSnapshot::summary() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "scored=%llu cached=%llu flagged=%llu (%.2f%%) shed=%llu "
      "rejected=%llu deadline=%llu degraded=%llu stalled=%llu depth=%llu "
      "model=v%llu p50=%.0fus p95=%.0fus p99=%.0fus%s",
      static_cast<unsigned long long>(scored),
      static_cast<unsigned long long>(cached),
      static_cast<unsigned long long>(flagged), 100.0 * flag_rate(),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(deadline_exceeded),
      static_cast<unsigned long long>(degraded),
      static_cast<unsigned long long>(stalled_workers),
      static_cast<unsigned long long>(queue_depth),
      static_cast<unsigned long long>(model_version), p50_micros(),
      p95_micros(), p99_micros(),
      within_budget() ? "" : " [OVER 100ms BUDGET]");
  return buf;
}

ServeMetrics::ServeMetrics(std::size_t n_workers,
                           obs::MetricsRegistry* registry,
                           std::string_view prefix)
    : n_workers_(n_workers == 0 ? 1 : n_workers) {
  if (registry == nullptr) {
    owned_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_.get();
  }
  registry_ = registry;
  const std::string p(prefix);
  scored_ = &registry_->counter(p + "_scored_total",
                                "responses delivered with a detection");
  flagged_ = &registry_->counter(p + "_flagged_total",
                                 "scored responses with detection.flagged");
  shed_ = &registry_->counter(p + "_shed_total",
                              "responses delivered as shed");
  rejected_ = &registry_->counter(p + "_rejected_total",
                                  "submissions refused at admission");
  batches_ = &registry_->counter(p + "_batches_total",
                                 "worker batch iterations");
  cached_ = &registry_->counter(
      p + "_cached_total", "scored responses answered by the verdict cache");
  deadline_exceeded_ = &registry_->counter(
      p + "_deadline_exceeded_total", "requests answered past their deadline");
  degraded_ = &registry_->counter(p + "_degraded_total",
                                  "responses from the UA-prior fallback");
  latency_ = &registry_->histogram(
      p + "_latency_micros",
      std::span<const std::uint64_t>(kLatencyBucketBoundsMicros),
      "queue wait + scoring per answered session, microseconds");
  batch_size_ = &registry_->histogram(
      p + "_batch_size", std::span<const std::uint64_t>(kBatchSizeBucketBounds),
      "requests drained per worker batch");
  stalled_workers_ = &registry_->gauge(
      p + "_stalled_workers", "workers stuck inside one batch (watchdog)");
}

void ServeMetrics::record_scored(std::size_t worker, bool flagged,
                                 std::uint64_t latency_micros,
                                 std::uint64_t exemplar_trace_id) noexcept {
  scored_->increment(worker);
  if (flagged) flagged_->increment(worker);
  latency_->observe_exemplar(latency_micros, exemplar_trace_id, worker);
}

void ServeMetrics::record_cached(std::size_t stripe, bool flagged,
                                 std::uint64_t latency_micros,
                                 std::uint64_t exemplar_trace_id) noexcept {
  scored_->increment(stripe);
  cached_->increment(stripe);
  if (flagged) flagged_->increment(stripe);
  latency_->observe_exemplar(latency_micros, exemplar_trace_id, stripe);
}

void ServeMetrics::record_shed(std::size_t worker) noexcept {
  shed_->increment(worker);
}

void ServeMetrics::record_deadline_exceeded(std::size_t worker) noexcept {
  deadline_exceeded_->increment(worker);
}

void ServeMetrics::record_degraded(std::size_t worker, bool flagged,
                                   std::uint64_t latency_micros,
                                   std::uint64_t exemplar_trace_id) noexcept {
  degraded_->increment(worker);
  if (flagged) flagged_->increment(worker);
  latency_->observe_exemplar(latency_micros, exemplar_trace_id, worker);
}

void ServeMetrics::record_batch(std::size_t worker,
                                std::uint64_t batch_size) noexcept {
  batches_->increment(worker);
  batch_size_->observe(batch_size, worker);
}

void ServeMetrics::record_rejected() noexcept { rejected_->increment(); }

void ServeMetrics::record_shed_on_submit() noexcept { shed_->increment(); }

MetricsSnapshot ServeMetrics::snapshot() const {
  MetricsSnapshot out;
  out.scored = scored_->value();
  out.flagged = flagged_->value();
  out.shed = shed_->value();
  out.rejected = rejected_->value();
  out.batches = batches_->value();
  out.cached = cached_->value();
  out.deadline_exceeded = deadline_exceeded_->value();
  out.degraded = degraded_->value();
  out.stalled_workers =
      static_cast<std::uint64_t>(stalled_workers_->value());
  const std::vector<std::uint64_t> latency = latency_->bucket_counts();
  for (std::size_t b = 0; b < out.latency_histogram.size(); ++b) {
    out.latency_histogram[b] = latency[b];
  }
  const std::vector<std::uint64_t> batch_sizes = batch_size_->bucket_counts();
  for (std::size_t b = 0; b < out.batch_size_histogram.size(); ++b) {
    out.batch_size_histogram[b] = batch_sizes[b];
  }
  return out;
}

}  // namespace bp::serve
