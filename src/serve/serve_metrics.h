// Serving metrics, re-based onto the observability registry.
//
// Every scored session updates counters; a metrics layer that takes a
// mutex per session would serialize the worker pool it is measuring.
// The instruments are obs::MetricsRegistry counters/histograms — the
// same cache-line-aligned striped relaxed-atomic design this class
// originally pioneered, now shared by every subsystem.  Each worker
// passes its index as the stripe hint (no cross-worker sharing on the
// hot path); `snapshot()` folds the stripes into one
// consistent-enough view for reporting.
//
// When no registry is supplied, ServeMetrics owns a private one, so
// engines in tests and benches stay isolated; supplying a registry
// (EngineConfig::registry) exports the serving counters through the
// same `render_prometheus()` / `render_json()` as drift, retraining,
// fault and training telemetry.  Two engines sharing one registry must
// use distinct metric prefixes, or they will share instruments.
//
// Consistency model of a MetricsSnapshot (pinned down after the
// non-atomic-gauge bug): the counter fields are striped-counter folds —
// each exact once writers are quiescent, but not a point-in-time cut
// across fields (a session may land in `scored` after `flagged` was
// read).  `queue_depth`, `model_version` and `stalled_workers` are
// *instantaneous gauge reads taken at snapshot time*, not atomic with
// the counter fold: a snapshot may show queue_depth=0 alongside a
// scored count that grew after the fold.  All three go through the
// registry's gauge type (stalled_workers as a stored gauge written by
// the watchdog; queue_depth and model_version as render-time callback
// gauges registered by the engine), so exported values follow the same
// semantics: fresh at read time, unsynchronized with counters.
//
// Latency is recorded as a fixed-bucket histogram over microseconds so
// p50/p95/p99 can be reported against the paper's 100 ms per-request
// budget (§3) without storing samples.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "obs/metrics_registry.h"

namespace bp::serve {

// §3's per-request budget: "around 100 milliseconds".
inline constexpr std::uint64_t kLatencyBudgetMicros = 100'000;

// Bucket upper bounds in microseconds: a coarse log ladder from 50 µs
// to 10 s.  The last bucket is open-ended.
inline constexpr std::array<std::uint64_t, 16> kLatencyBucketBoundsMicros = {
    50,      100,     250,     500,       1'000,     2'500,
    5'000,   10'000,  25'000,  50'000,    100'000,   250'000,
    500'000, 1'000'000, 5'000'000, 10'000'000};

std::size_t latency_bucket(std::uint64_t micros) noexcept;

// Bucket upper bounds for the per-drain batch-size histogram: powers of
// two up to 256 (max_batch is typically 32-64; the open-ended last
// bucket catches experiments beyond that).
inline constexpr std::array<std::uint64_t, 9> kBatchSizeBucketBounds = {
    1, 2, 4, 8, 16, 32, 64, 128, 256};

// Folded view of the engine's counters at one instant.
struct MetricsSnapshot {
  std::uint64_t scored = 0;    // responses delivered with a detection
  std::uint64_t flagged = 0;   // scored responses with detection.flagged
  std::uint64_t shed = 0;      // responses delivered as shed (DropOldest)
  std::uint64_t rejected = 0;  // submissions refused at admission (Reject)
  std::uint64_t batches = 0;   // worker batch iterations
  std::uint64_t cached = 0;    // scored responses answered by the
                               // verdict cache (subset of `scored`)
  std::uint64_t deadline_exceeded = 0;  // answered past their deadline
  std::uint64_t degraded = 0;  // answered by the UA-prior fallback scorer
  std::uint64_t stalled_workers = 0;  // watchdog gauge, at snapshot time
  std::uint64_t queue_depth = 0;  // instantaneous, at snapshot time
  std::uint64_t model_version = 0;  // latest published at snapshot time
  std::array<std::uint64_t, kLatencyBucketBoundsMicros.size() + 1>
      latency_histogram{};  // queue wait + scoring, per answered session
                            // (model-scored and degraded)
  std::array<std::uint64_t, kBatchSizeBucketBounds.size() + 1>
      batch_size_histogram{};  // requests drained per worker batch

  double flag_rate() const noexcept {
    const std::uint64_t answered = scored + degraded;
    return answered == 0 ? 0.0 : static_cast<double>(flagged) / answered;
  }
  // Histogram quantile (linear interpolation inside a bucket).  q is
  // clamped to [0, 1]; NaN is treated as 0.  Returns 0 when nothing
  // was scored.
  double latency_quantile_micros(double q) const noexcept;
  double p50_micros() const noexcept { return latency_quantile_micros(0.50); }
  double p95_micros() const noexcept { return latency_quantile_micros(0.95); }
  double p99_micros() const noexcept { return latency_quantile_micros(0.99); }
  // Inclusive: a p99 of exactly 100 ms is *within* the budget ("around
  // 100 milliseconds" is a target, not an open bound), matching the
  // `<=` semantics of the histogram's bucket bounds.
  bool within_budget() const noexcept {
    return p99_micros() <= static_cast<double>(kLatencyBudgetMicros);
  }

  // One-line human-readable summary for logs and examples.
  std::string summary() const;
};

class ServeMetrics {
 public:
  // When `registry` is null the instruments live in a private registry
  // owned by this object; otherwise they are registered into the given
  // registry under `prefix` and shared with its other exporters.
  explicit ServeMetrics(std::size_t n_workers,
                        obs::MetricsRegistry* registry = nullptr,
                        std::string_view prefix = "bp_serve");

  // Hot-path recording; `worker` < n_workers, callable concurrently
  // from distinct workers without contention (worker index = stripe
  // hint).  `exemplar_trace_id` (nonzero only for a request whose trace
  // is sampled) is remembered as the latency histogram's per-bucket
  // exemplar, linking the JSON exporter's buckets back to /tracez.
  void record_scored(std::size_t worker, bool flagged,
                     std::uint64_t latency_micros,
                     std::uint64_t exemplar_trace_id = 0) noexcept;
  // A verdict-cache hit: counts as scored (the caller got a full
  // detection) *and* bumps the cached counter.
  void record_cached(std::size_t stripe, bool flagged,
                     std::uint64_t latency_micros,
                     std::uint64_t exemplar_trace_id = 0) noexcept;
  void record_shed(std::size_t worker) noexcept;
  // One worker drain of `batch_size` requests (feeds the batch-size
  // histogram, so /statusz can show how full the SoA kernel runs).
  void record_batch(std::size_t worker, std::uint64_t batch_size) noexcept;
  void record_deadline_exceeded(std::size_t worker) noexcept;
  void record_degraded(std::size_t worker, bool flagged,
                       std::uint64_t latency_micros,
                       std::uint64_t exemplar_trace_id = 0) noexcept;

  // Admission-side events (any thread).
  void record_rejected() noexcept;
  void record_shed_on_submit() noexcept;

  // Watchdog gauge (single writer: the watchdog thread).
  void set_stalled_workers(std::uint64_t n) noexcept {
    stalled_workers_->set(static_cast<double>(n));
  }

  std::size_t n_workers() const noexcept { return n_workers_; }

  // The registry the instruments live in (the private one when none
  // was supplied) — what an exporter renders.
  obs::MetricsRegistry& registry() noexcept { return *registry_; }
  const obs::MetricsRegistry& registry() const noexcept { return *registry_; }

  // Fold all counter stripes.  Caller fills queue_depth /
  // model_version (engine-owned context; see the consistency model
  // above).
  MetricsSnapshot snapshot() const;

 private:
  std::size_t n_workers_;
  std::unique_ptr<obs::MetricsRegistry> owned_;  // set iff none supplied
  obs::MetricsRegistry* registry_;

  obs::Counter* scored_;
  obs::Counter* flagged_;
  obs::Counter* shed_;
  obs::Counter* rejected_;
  obs::Counter* batches_;
  obs::Counter* cached_;
  obs::Counter* deadline_exceeded_;
  obs::Counter* degraded_;
  obs::Histogram* latency_;
  obs::Histogram* batch_size_;
  obs::Gauge* stalled_workers_;
};

}  // namespace bp::serve
