// Lightweight structured tracing: spans with monotonic timestamps and
// explicit parent ids, recorded into a bounded in-memory ring — no I/O
// and no allocation on the hot path.
//
// Sampling is deterministic and replayable: whether a trace id is kept
// is a pure function of (sink seed, trace id) via Rng::split, the same
// pre-split-stream construction the parallel training paths use.  The
// same seed therefore samples the same trace ids no matter how many
// threads record, in what order, or how often the workload is re-run —
// a sampled-away trace can always be recovered by re-running with the
// same seed and a higher rate.
//
// Determinism contract (pinned by ObsTrace tests): with quiescent
// writers, `render(/*include_timing=*/false)` is byte-identical across
// runs and thread counts provided the same spans were recorded and the
// ring did not overflow — events are keyed by (trace_id, span_id),
// both of which callers assign deterministically, and rendering sorts
// by that key.  Timestamps are real monotonic-clock readings and are
// only emitted when include_timing is requested.
//
// Span-id convention: ids are unique within one trace and assigned by
// the instrumented code (the request path uses 1 = root "request",
// 2 = "queue_wait", 3 = terminal stage; the retrain cycle and training
// pipeline document theirs alongside their instrumentation).  parent_id
// 0 marks a root span.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace bp::obs {

// Microseconds on the steady clock — the timestamp base of every span.
inline std::int64_t steady_now_us() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct TraceEvent {
  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;    // unique within the trace, caller-assigned
  std::uint32_t parent_id = 0;  // 0 = root span
  const char* name = "";        // must have static storage duration
  std::int64_t start_us = 0;    // steady_now_us() at span start
  std::int64_t end_us = 0;      // steady_now_us() at span end
};

struct TraceSinkConfig {
  std::size_t capacity = 8192;  // ring slots; oldest events overwritten
  double sample_rate = 1.0;     // fraction of trace ids kept, in [0, 1]
  std::uint64_t seed = 0x9d2c5680;
};

class TraceSink {
 public:
  explicit TraceSink(TraceSinkConfig config = {});

  // Deterministic head-sampling decision for a trace id: pure in
  // (seed, trace_id), identical on every thread and every run.
  bool sampled(std::uint64_t trace_id) const noexcept;

  // Record one finished span.  Drops (cheaply, before the lock) events
  // of unsampled traces; overwrites the oldest event when full.
  void record(const TraceEvent& event);

  // Record one finished span unconditionally, bypassing the local
  // head-sampling decision.  For spans of a trace whose sampling was
  // decided upstream (an adopted cross-hop context): the whole trace
  // must land or none of it, regardless of what this sink's own seed
  // would have decided for the id.
  void record_forced(const TraceEvent& event);

  // Snapshot of the ring in (trace_id, span_id) order.
  std::vector<TraceEvent> events() const;

  // One line per event, sorted by (trace_id, span_id):
  //   trace=<id> span=<id> parent=<id> name=<name> [start=<us> end=<us>]
  // With include_timing=false the output is a pure function of the
  // recorded (trace, span, parent, name) tuples — the determinism
  // surface the tests byte-compare.
  //
  // trace_filter != 0 keeps only that trace id's events; limit != 0
  // keeps only the most recent `limit` matching events (recording
  // order, before the sort) — the /tracez?trace=<id>&n=K surface.
  std::string render(bool include_timing = true,
                     std::uint64_t trace_filter = 0,
                     std::size_t limit = 0) const;

  std::uint64_t recorded() const noexcept {
    return recorded_.load(std::memory_order_relaxed);
  }
  // Events overwritten by ring wrap-around (recorded but no longer
  // retrievable).
  std::uint64_t overwritten() const noexcept {
    return overwritten_.load(std::memory_order_relaxed);
  }

  const TraceSinkConfig& config() const noexcept { return config_; }

  void clear();

 private:
  TraceSinkConfig config_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;  // ring write cursor
  std::size_t size_ = 0;  // live events (<= capacity)
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> overwritten_{0};
};

// RAII span: captures the start timestamp at construction (when the
// sink samples the trace) and records the event on finish()/destruction.
class Span {
 public:
  Span(TraceSink* sink, std::uint64_t trace_id, std::uint32_t span_id,
       std::uint32_t parent_id, const char* name) noexcept
      : sink_(sink != nullptr && sink->sampled(trace_id) ? sink : nullptr) {
    if (sink_ == nullptr) return;
    event_.trace_id = trace_id;
    event_.span_id = span_id;
    event_.parent_id = parent_id;
    event_.name = name;
    event_.start_us = steady_now_us();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { finish(); }

  void finish() noexcept {
    if (sink_ == nullptr) return;
    event_.end_us = steady_now_us();
    sink_->record(event_);
    sink_ = nullptr;
  }

 private:
  TraceSink* sink_;
  TraceEvent event_;
};

// Shared context threaded through layers that optionally report into
// the observability plane (e.g. Polygraph::train).  All members may be
// null — instrumentation then compiles down to skipped branches.
class MetricsRegistry;
struct ObsContext {
  MetricsRegistry* registry = nullptr;
  TraceSink* trace = nullptr;
  std::uint64_t trace_id = 1;  // trace id for this operation's spans
};

}  // namespace bp::obs
