// Shannon entropy and anonymity-set statistics.
//
// Paper §7.4 argues that the 28 coarse-grained features are privacy
// preserving: only 0.3% of fingerprints are unique, 95.6% sit in
// anonymity sets larger than 50, and the most informative feature (the
// user-agent itself) carries 5.97 bits / 0.58 normalized entropy — no
// worse than what a UA string alone reveals.  This module computes those
// statistics (Figure 5, Table 7) for arbitrary categorical values.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace bp::stats {

// Frequency histogram of arbitrary string-valued observations.
std::map<std::string, std::size_t> histogram(
    const std::vector<std::string>& values);

// Shannon entropy in bits of the empirical distribution.
double shannon_entropy(const std::map<std::string, std::size_t>& counts);
double shannon_entropy(const std::vector<std::string>& values);

// Normalized entropy: H / log2(N), where N is the number of observations
// (the convention of Laperdrix et al.'s AmIUnique analysis, which the
// paper compares against).  Zero when N < 2.
double normalized_entropy(const std::vector<std::string>& values);

struct AnonymitySetStats {
  // bucket -> percentage of *fingerprints* (observations, not distinct
  // values) whose identical-value group has a size within the bucket.
  double pct_unique = 0.0;          // set size == 1
  double pct_2_to_10 = 0.0;         // 2..10
  double pct_11_to_50 = 0.0;        // 11..50
  double pct_over_50 = 0.0;         // > 50
  std::size_t distinct_values = 0;
  std::size_t observations = 0;
};

// Group observations by identical value and bucket by group size.
AnonymitySetStats anonymity_sets(const std::vector<std::string>& values);

// Full distribution: for each observation, the size of its anonymity set;
// returned as (set-size, % of observations) sorted ascending by size.
// Used to draw Figure 5.
std::vector<std::pair<std::size_t, double>> anonymity_distribution(
    const std::vector<std::string>& values);

}  // namespace bp::stats
