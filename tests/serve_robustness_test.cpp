// Robustness tests for the scoring engine's failure posture: request
// deadlines, degraded (UA-prior) scoring when no model is published,
// watchdog stall detection, and the stop()/drain() admission race —
// an admitted request must never be dropped without a response.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "serve/degraded.h"
#include "serve/model_registry.h"
#include "serve/scoring_engine.h"
#include "util/fault.h"

namespace bp::serve {
namespace {

using std::chrono::milliseconds;

const ua::UserAgent kChrome100{ua::Vendor::kChrome, 100, ua::Os::kWindows10};
const ua::UserAgent kFirefox100{ua::Vendor::kFirefox, 100, ua::Os::kWindows10};
const ua::UserAgent kChrome999{ua::Vendor::kChrome, 999, ua::Os::kWindows10};

core::Polygraph make_model(bool swapped_table) {
  core::PolygraphConfig config;
  config.feature_indices = {0, 1};
  config.pca_components = 2;
  config.k = 2;
  ml::Matrix centroids(2, 2);
  centroids(1, 0) = 10.0;
  centroids(1, 1) = 10.0;
  ml::KMeansConfig kconfig;
  kconfig.k = 2;
  core::ClusterTable table;
  table.assign(kChrome100, swapped_table ? 1 : 0);
  table.assign(kFirefox100, swapped_table ? 0 : 1);
  return core::Polygraph::from_parts(
      config, ml::StandardScaler::from_params({0.0, 0.0}, {1.0, 1.0}),
      ml::Pca::from_params({0.0, 0.0}, {1.0, 1.0}, ml::Matrix::identity(2)),
      ml::KMeans::from_centroids(std::move(centroids), kconfig),
      std::move(table));
}

ScoreRequest request_at_origin(std::uint64_t id,
                               ua::UserAgent claimed = kChrome100) {
  ScoreRequest request;
  request.id = id;
  request.features = {0, 0};
  request.claimed = claimed;
  return request;
}

// --------------------------- degraded mode ---------------------------

TEST(ServeRobustness, DegradedScoreJudgesClaimedUaAlone) {
  // A UA naming a real release passes without fingerprint evidence.
  const core::Detection real = degraded_score(kChrome100);
  EXPECT_FALSE(real.flagged);
  EXPECT_EQ(real.risk_factor, 0);
  // A version that never shipped is fraudulent regardless of features.
  const core::Detection fake = degraded_score(kChrome999);
  EXPECT_TRUE(fake.flagged);
  EXPECT_GE(fake.risk_factor, 1);
}

TEST(ServeRobustness, DegradedModeAnswersWhenNoModelIsPublished) {
  ModelRegistry registry;  // never published
  std::mutex mutex;
  std::vector<ScoreResponse> responses;
  EngineConfig config;
  config.workers = 2;
  config.degrade_without_model = true;
  {
    ScoringEngine engine(registry, config, [&](const ScoreResponse& r) {
      std::lock_guard lock(mutex);
      responses.push_back(r);
    });
    for (std::uint64_t id = 0; id < 16; ++id) {
      ASSERT_EQ(engine.submit(request_at_origin(id)), SubmitResult::kAdmitted);
    }
    ASSERT_EQ(engine.submit(request_at_origin(16, kChrome999)),
              SubmitResult::kAdmitted);
    engine.drain();

    const MetricsSnapshot metrics = engine.metrics();
    EXPECT_EQ(metrics.degraded, 17u);
    EXPECT_EQ(metrics.scored, 0u);
    EXPECT_EQ(metrics.flagged, 1u);  // only the impossible Chrome 999
  }
  ASSERT_EQ(responses.size(), 17u);
  for (const auto& r : responses) {
    EXPECT_EQ(r.status, ResponseStatus::kDegraded);
    EXPECT_EQ(r.model_version, 0u);
    EXPECT_EQ(r.detection.flagged, r.id == 16u);
  }
}

TEST(ServeRobustness, DegradedModeEndsWhenModelArrives) {
  ModelRegistry registry;
  std::atomic<std::uint64_t> degraded{0}, scored{0};
  EngineConfig config;
  config.workers = 1;
  config.degrade_without_model = true;
  ScoringEngine engine(registry, config, [&](const ScoreResponse& r) {
    if (r.status == ResponseStatus::kDegraded) ++degraded;
    if (r.status == ResponseStatus::kScored) ++scored;
  });

  ASSERT_EQ(engine.submit(request_at_origin(0)), SubmitResult::kAdmitted);
  engine.drain();
  registry.publish(make_model(false));
  ASSERT_EQ(engine.submit(request_at_origin(1)), SubmitResult::kAdmitted);
  engine.drain();

  EXPECT_EQ(degraded.load(), 1u);
  EXPECT_EQ(scored.load(), 1u);
}

// ----------------------------- deadlines -----------------------------

TEST(ServeRobustness, RequestsQueuedPastDeadlineAreNotScoredLate) {
  ModelRegistry registry;
  std::mutex mutex;
  std::vector<ScoreResponse> responses;
  EngineConfig config;
  config.workers = 1;
  config.deadline = milliseconds(5);
  ScoringEngine engine(registry, config, [&](const ScoreResponse& r) {
    std::lock_guard lock(mutex);
    responses.push_back(r);
  });

  // No model yet: the requests queue while their deadline burns down.
  for (std::uint64_t id = 0; id < 4; ++id) {
    ASSERT_EQ(engine.submit(request_at_origin(id)), SubmitResult::kAdmitted);
  }
  std::this_thread::sleep_for(milliseconds(30));
  registry.publish(make_model(false));
  engine.drain();

  ASSERT_EQ(responses.size(), 4u);
  for (const auto& r : responses) {
    EXPECT_EQ(r.status, ResponseStatus::kDeadlineExceeded);
    EXPECT_EQ(r.model_version, 0u);
    EXPECT_GE(r.latency, milliseconds(5));
  }
  EXPECT_EQ(engine.metrics().deadline_exceeded, 4u);
  EXPECT_EQ(engine.metrics().scored, 0u);

  // A fresh request (admitted after the publish) scores normally.
  ASSERT_EQ(engine.submit(request_at_origin(99)), SubmitResult::kAdmitted);
  engine.drain();
  EXPECT_EQ(engine.metrics().scored, 1u);
}

TEST(ServeRobustness, ZeroDeadlineMeansNoDeadline) {
  ModelRegistry registry;
  std::atomic<std::uint64_t> scored{0};
  EngineConfig config;
  config.workers = 1;  // deadline stays the 0 default
  ScoringEngine engine(registry, config, [&](const ScoreResponse& r) {
    if (r.status == ResponseStatus::kScored) ++scored;
  });
  ASSERT_EQ(engine.submit(request_at_origin(0)), SubmitResult::kAdmitted);
  std::this_thread::sleep_for(milliseconds(20));
  registry.publish(make_model(false));
  engine.drain();
  EXPECT_EQ(scored.load(), 1u);
}

// ----------------------------- watchdog ------------------------------

TEST(ServeRobustness, WatchdogSurfacesStalledWorkers) {
  auto& faults = bp::util::FaultRegistry::instance();
  faults.disarm_all();
  faults.arm("engine.worker_stall", 1.0, 1);

  ModelRegistry registry;
  registry.publish(make_model(false));
  EngineConfig config;
  config.workers = 1;
  config.max_batch = 1;
  config.watchdog_interval = milliseconds(2);
  config.stall_threshold = milliseconds(10);  // each batch stalls 20 ms
  std::atomic<std::uint64_t> answered{0};
  ScoringEngine engine(registry, config,
                       [&](const ScoreResponse&) { ++answered; });

  std::uint64_t observed_stalled = 0;
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::uint64_t id = 0;
  while (observed_stalled == 0 && std::chrono::steady_clock::now() < give_up) {
    (void)engine.submit(request_at_origin(id++));
    observed_stalled = engine.metrics().stalled_workers;
    std::this_thread::sleep_for(milliseconds(1));
  }
  faults.disarm_all();
  EXPECT_GE(observed_stalled, 1u);
  engine.drain();
  EXPECT_EQ(answered.load(), id);
}

// ------------------------ stop()/drain() race ------------------------

// The satellite pin: a request admitted concurrently with stop() (or
// whose push is refused while a drain() waits) can never be dropped
// without a response, and drain() can never hang on a retracted
// admission.  Producers hammer submit() while one thread stops the
// engine and another repeatedly drains; afterwards every admitted id
// must have exactly one response and non-admitted ids none.
TEST(ServeRobustness, StopDrainStressLosesNoAdmittedRequest) {
  constexpr int kIterations = 12;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 64;

  for (int iteration = 0; iteration < kIterations; ++iteration) {
    ModelRegistry registry;
    registry.publish(make_model(false));

    std::vector<std::atomic<int>> response_count(kProducers * kPerProducer);
    for (auto& c : response_count) c.store(0);

    EngineConfig config;
    config.workers = 2;
    config.queue_capacity = 8;  // small, so kRejected happens constantly
    config.max_batch = 4;
    config.overflow_policy = OverflowPolicy::kReject;
    ScoringEngine engine(registry, config, [&](const ScoreResponse& r) {
      response_count[r.id].fetch_add(1, std::memory_order_relaxed);
    });

    std::vector<std::vector<std::uint64_t>> admitted_ids(kProducers);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          const std::uint64_t id =
              static_cast<std::uint64_t>(p) * kPerProducer + i;
          if (engine.submit(request_at_origin(id)) == SubmitResult::kAdmitted) {
            admitted_ids[p].push_back(id);
          }
        }
      });
    }
    // A drainer that races the rejections: without the admission
    // retraction notifying drain_cv_, this thread can hang forever on a
    // transiently inflated admitted_ count.
    std::thread drainer([&] {
      for (int i = 0; i < 20; ++i) engine.drain();
    });
    // Stop concurrently with active producers, at a different point in
    // the submission stream each iteration.
    std::thread stopper([&] {
      std::this_thread::sleep_for(
          std::chrono::microseconds(50 * (iteration + 1)));
      engine.stop();
    });

    for (auto& t : producers) t.join();
    stopper.join();
    drainer.join();
    engine.drain();  // must return immediately after stop()

    std::size_t admitted_total = 0;
    for (int p = 0; p < kProducers; ++p) admitted_total += admitted_ids[p].size();
    std::vector<bool> was_admitted(response_count.size(), false);
    for (const auto& ids : admitted_ids) {
      for (const std::uint64_t id : ids) was_admitted[id] = true;
    }
    std::size_t responded_total = 0;
    for (std::size_t id = 0; id < response_count.size(); ++id) {
      const int n = response_count[id].load();
      if (was_admitted[id]) {
        EXPECT_EQ(n, 1) << "iteration " << iteration << " id " << id;
      } else {
        EXPECT_EQ(n, 0) << "iteration " << iteration << " id " << id;
      }
      responded_total += static_cast<std::size_t>(n);
    }
    EXPECT_EQ(responded_total, admitted_total) << "iteration " << iteration;
  }
}

// Same race under kBlock: producers block on a full queue until stop()
// closes it; the refused pushes must retract their admissions.
TEST(ServeRobustness, StopWhileProducersBlockOnFullQueue) {
  ModelRegistry registry;  // no model: workers park, queue stays full
  std::atomic<std::uint64_t> responses{0};
  EngineConfig config;
  config.workers = 1;
  config.queue_capacity = 4;
  config.overflow_policy = OverflowPolicy::kBlock;
  ScoringEngine engine(registry, config,
                       [&](const ScoreResponse&) { ++responses; });

  std::atomic<std::uint64_t> admitted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < 50; ++i) {
        if (engine.submit(request_at_origin(
                static_cast<std::uint64_t>(p) * 50 + i)) ==
            SubmitResult::kAdmitted) {
          ++admitted;
        }
      }
    });
  }
  std::this_thread::sleep_for(milliseconds(5));
  engine.stop();  // unblocks producers; queued requests answered as shed
  for (auto& t : producers) t.join();
  engine.drain();
  EXPECT_EQ(responses.load(), admitted.load());
}

}  // namespace
}  // namespace bp::serve
