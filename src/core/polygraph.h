// Browser Polygraph — the paper's primary contribution.
//
// A semi-supervised pipeline that verifies whether a session's claimed
// user-agent is consistent with its coarse-grained fingerprint:
//
//   StandardScaler (deviation features only, §6.4.1)
//     -> IsolationForest outlier filter (§6.4.1)
//     -> PCA to 7 components (§6.4.2)
//     -> k-means, k = 11 (§6.4.3)
//     -> cluster <-> user-agent table (Table 3)
//     -> Algorithm 1 risk factor on cluster mismatch (§6.5)
//
// Training is offline; detection is a scale + project + nearest-centroid
// lookup, cheap enough for the 100 ms / per-request budget of §3.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "browser/extractor.h"
#include "obs/trace.h"
#include "ml/isolation_forest.h"
#include "ml/kmeans.h"
#include "ml/metrics.h"
#include "ml/pca.h"
#include "ml/scaler.h"
#include "ua/user_agent.h"

namespace bp::core {

struct PolygraphConfig {
  // Candidate-catalog indices of the model's features; defaults to the
  // production 28 of Table 8.
  std::vector<std::size_t> feature_indices;
  std::size_t pca_components = 7;
  std::size_t k = 11;
  // Fraction of training rows discarded as outliers.  The paper reports
  // the filter removing 172 of 205k rows (§6.4.1).
  double contamination = 0.00084;
  std::uint64_t seed = 42;
  int kmeans_restarts = 4;
  // Labels with fewer training rows than this are re-aligned against the
  // legitimate baseline fingerprints from the candidate-generation stage
  // (§6.4.3's manual adjustment for Chrome 81 / Edge 17-class UAs).
  std::size_t rare_label_min_rows = 100;
  bool align_rare_labels = true;

  // Algorithm 1 parameters: vendor mismatch distance and the version
  // difference divisor ("empirically selected referring to Table 3").
  int vendor_distance = 20;
  int version_divisor = 4;

  static PolygraphConfig production();
};

// The UA <-> cluster association derived from training (Table 3).
class ClusterTable {
 public:
  void assign(const ua::UserAgent& ua, std::size_t cluster);

  // Expected cluster of a claimed UA; nullopt for UAs absent from
  // training (e.g. brand-new releases — the drift module's territory).
  std::optional<std::size_t> expected_cluster(const ua::UserAgent& ua) const;

  // All user-agents whose majority sits in `cluster` (Algorithm 1's
  // userAgentTable[predictedCluster]).
  const std::vector<ua::UserAgent>& user_agents_in(std::size_t cluster) const;

  // Every cluster id that holds at least one UA majority.
  std::vector<std::size_t> populated_clusters() const;

  std::size_t size() const noexcept { return ua_to_cluster_.size(); }
  const std::map<std::uint32_t, std::size_t>& entries() const noexcept {
    return ua_to_cluster_;
  }

 private:
  std::map<std::uint32_t, std::size_t> ua_to_cluster_;
  std::map<std::size_t, std::vector<ua::UserAgent>> cluster_to_uas_;
  // Position of each UA inside its cluster's list, so a re-assignment is
  // a swap-remove instead of a remove_if scan (bulk table rebuilds used
  // to be quadratic in the number of UAs).
  std::map<std::uint32_t, std::size_t> position_in_cluster_;
  std::vector<ua::UserAgent> empty_;
};

// Outcome of scoring one session.  Besides the verdict it carries the
// Algorithm-1 *evidence* (all fixed-size fields — the scoring path
// stays allocation-free) so the audit trail can reconstruct any flag
// offline: predicted vs expected cluster, the distance to the winning
// centroid, and the risk factor.
struct Detection {
  std::size_t predicted_cluster = 0;
  std::optional<std::size_t> expected_cluster;  // nullopt: UA not in table
  bool flagged = false;  // cluster mismatch => suspicious session
  // Algorithm 1's output; 0 when not flagged.  A predicted cluster with
  // no known UA (a noise cluster) yields the maximum (vendor) distance.
  int risk_factor = 0;
  // Squared distance (in PCA space) between the session's projection
  // and the predicted centroid — how deep inside its cluster the
  // fingerprint sits.  0 for the degraded UA-prior scorer.
  double centroid_distance2 = 0.0;
};

// Wall-clock seconds per training stage; bench_training_throughput
// reports these per thread count to show where a retrain's latency goes.
struct TrainingTimings {
  double scale = 0.0;   // scaler fit + transform
  double filter = 0.0;  // isolation-forest fit + inlier mask + row filter
  double pca = 0.0;     // covariance + eigenbasis + projection
  double kmeans = 0.0;  // all k-means++ restarts
  double table = 0.0;   // majority table + rare-label realignment
  double total = 0.0;
};

struct TrainingSummary {
  std::size_t rows_total = 0;
  std::size_t rows_outliers_removed = 0;
  double clustering_accuracy = 0.0;  // Appendix-4 Formula 1 on training data
  std::size_t labels_realigned = 0;  // rare-UA adjustments applied
  double wcss = 0.0;                 // final k-means inertia
  TrainingTimings timings;
};

// Reusable buffers for the allocation-free scoring path.  One instance
// per thread (the serving tier keeps one per worker); after the first
// score the vectors hold their capacity, so steady-state scoring does
// not touch the allocator.
class ScoringScratch {
 public:
  ScoringScratch() = default;

 private:
  friend class Polygraph;
  std::vector<double> features_;   // int32 -> double widening target
  std::vector<double> scaled_;     // StandardScaler output
  std::vector<double> projected_;  // PCA output
};

// Reusable structure-of-arrays buffers for the fused batch-scoring
// path (`Polygraph::score_batch`).  Like ScoringScratch: one instance
// per thread, capacity sticks after the first block, so steady-state
// batch scoring never touches the allocator.
//
// Layout (B = Polygraph::kScoreBatchBlock rows per block):
//   panel_      d x B, feature-major — panel_[c*B + r] is feature c of
//               row r, already scaled; the gather+scale pass writes a
//               contiguous lane per feature so every later loop strides
//               unit over rows.
//   centered_   B — one feature lane minus the PCA mean.
//   projected_  p x B, component-major PCA output.
//   distance_   B — squared-distance accumulator for one centroid.
//   best_d2_/best_cluster_  B — running argmin over centroids.
class BatchScratch {
 public:
  BatchScratch() = default;

 private:
  friend class Polygraph;
  std::vector<double> panel_;
  std::vector<double> centered_;
  std::vector<double> projected_;
  std::vector<double> distance_;
  std::vector<double> best_d2_;
  std::vector<std::uint32_t> best_cluster_;
};

class Polygraph {
 public:
  explicit Polygraph(PolygraphConfig config = PolygraphConfig::production());

  // Train on feature rows (columns in config.feature_indices order) and
  // the per-row claimed user-agents.  When `obs` is supplied, each
  // training stage is reported into its registry (per-stage seconds,
  // row/outlier counters) and traced as a span under obs->trace_id
  // (span ids: 1 = train root, 2..6 = scale/filter/pca/kmeans/table).
  TrainingSummary train(const ml::Matrix& features,
                        const std::vector<ua::UserAgent>& user_agents,
                        const obs::ObsContext* obs = nullptr);

  bool trained() const noexcept { return kmeans_.fitted(); }

  // Nearest-centroid cluster of a raw (unscaled) feature vector.
  std::size_t predict_cluster(std::span<const double> features) const;
  std::vector<std::size_t> predict_clusters(const ml::Matrix& features) const;

  // Full fraud-detection scoring (§6.5).
  Detection score(std::span<const double> features,
                  const ua::UserAgent& claimed) const;

  // Allocation-free variants for the serving hot path.  All scoring
  // entry points are const and touch only state frozen at train / load
  // time, so one model may be scored from many threads concurrently;
  // the scratch is the only mutable state and must not be shared
  // between threads.
  std::size_t predict_cluster(std::span<const double> features,
                              ScoringScratch& scratch) const;
  // As above, also reporting the squared distance to the winning
  // centroid (Detection::centroid_distance2); `distance2` may be null.
  std::size_t predict_cluster(std::span<const double> features,
                              ScoringScratch& scratch,
                              double* distance2) const;
  Detection score(std::span<const double> features,
                  const ua::UserAgent& claimed, ScoringScratch& scratch) const;
  // Scores a session's native integer feature storage directly
  // (traffic::SessionRecord::features) without an intermediate
  // std::vector<double> per call.
  Detection score(std::span<const std::int32_t> features,
                  const ua::UserAgent& claimed, ScoringScratch& scratch) const;

  // Fused structure-of-arrays batch scoring.  Processes `rows` in
  // blocks of kScoreBatchBlock sessions: one gather+scale pass builds a
  // feature-major panel, PCA projection and all centroid distances then
  // run as contiguous unit-stride loops over the row lanes
  // (auto-vectorizable, no per-row calls), and the verdict tail
  // (table lookup + Algorithm 1) matches the scalar path statement for
  // statement.
  //
  // Equivalence guarantee: for every row i, out[i] is bit-identical to
  // `score(rows[i], claims[i], scratch)` — same predicted/expected
  // cluster, flag, risk factor, and centroid_distance2 down to the last
  // mantissa bit.  This holds because every floating-point reduction
  // (PCA accumulation in feature order, distance accumulation in
  // component order) runs in the scalar path's exact order per row —
  // vectorization only runs independent *rows* side by side — and the
  // two places the scalar path's control flow diverges cannot leak into
  // a Detection: the scalar PCA's skip of exactly-zero centered values
  // can only flip the sign of a zero accumulator (squaring erases it),
  // and the scalar nearest-centroid early-exit never truncates the
  // winning distance.  Tests lock this in (core_batch_score_test).
  //
  // `rows`/`claims`/`out` must have equal length; every row must have
  // feature_indices.size() entries.  Thread-safety matches score():
  // const model, per-thread scratch.
  static constexpr std::size_t kScoreBatchBlock = 64;
  void score_batch(std::span<const std::span<const std::int32_t>> rows,
                   std::span<const ua::UserAgent> claims,
                   std::span<Detection> out, BatchScratch& scratch) const;
  void score_batch(std::span<const std::span<const double>> rows,
                   std::span<const ua::UserAgent> claims,
                   std::span<Detection> out, BatchScratch& scratch) const;

  // Algorithm 1 verbatim: smallest UA distance within a cluster.
  int risk_factor(const ua::UserAgent& session_ua,
                  std::size_t predicted_cluster) const;

  const ClusterTable& cluster_table() const noexcept { return table_; }
  const PolygraphConfig& config() const noexcept { return config_; }
  const ml::Pca& pca() const noexcept { return pca_; }
  const ml::StandardScaler& scaler() const noexcept { return scaler_; }
  const ml::KMeans& kmeans() const noexcept { return kmeans_; }

  // The legitimate-baseline fingerprint of a release under this model's
  // feature set (used for rare-label alignment and by tests).
  std::vector<double> baseline_features(
      const browser::BrowserRelease& release) const;

  // Reassemble a trained model from persisted parts (model_io).
  static Polygraph from_parts(PolygraphConfig config, ml::StandardScaler scaler,
                              ml::Pca pca, ml::KMeans kmeans,
                              ClusterTable table);

 private:
  // Shared SoA kernel behind both score_batch overloads; T is the raw
  // feature element type (int32 widens exactly to double).
  template <typename T>
  void score_batch_impl(std::span<const std::span<const T>> rows,
                        std::span<const ua::UserAgent> claims,
                        std::span<Detection> out, BatchScratch& scratch) const;

  PolygraphConfig config_;
  ml::StandardScaler scaler_;
  ml::Pca pca_;
  ml::KMeans kmeans_;
  ClusterTable table_;
};

}  // namespace bp::core
