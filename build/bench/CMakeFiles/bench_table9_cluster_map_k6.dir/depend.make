# Empty dependencies file for bench_table9_cluster_map_k6.
# This may be replaced when dependencies are built.
