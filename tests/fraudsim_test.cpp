// Tests for the fraud ("anti-detect") browser simulation (§2.3 / Table 1).
#include <gtest/gtest.h>

#include "browser/extractor.h"
#include "fraudsim/fraud_browser.h"

namespace bp::fraudsim {
namespace {

ua::UserAgent chrome(int version) {
  return {ua::Vendor::kChrome, version, ua::Os::kWindows10};
}
ua::UserAgent firefox(int version) {
  return {ua::Vendor::kFirefox, version, ua::Os::kWindows10};
}

TEST(Roster, HasAllTable1Entries) {
  // Table 1 lists 11 builds; we also carry the newer GoLogin build used
  // in Table 5's experiment.
  EXPECT_EQ(table1_roster().size(), 12u);
}

TEST(Roster, CategoriesMatchTable1) {
  EXPECT_EQ(find_model("Linken Sphere-8.93")->category,
            FraudCategory::kCategory1);
  EXPECT_EQ(find_model("ClonBrowser-4.6.6")->category,
            FraudCategory::kCategory1);
  EXPECT_EQ(find_model("Incogniton-3.2.7.7")->category,
            FraudCategory::kCategory2);
  EXPECT_EQ(find_model("Sphere-1.3")->category, FraudCategory::kCategory2);
  EXPECT_EQ(find_model("AdsPower-4.12.27")->category,
            FraudCategory::kCategory3);
  EXPECT_EQ(find_model("AdsPower-5.4.20")->category,
            FraudCategory::kCategory3);
}

TEST(Roster, UnknownNameIsNull) { EXPECT_EQ(find_model("NotABrowser"), nullptr); }

TEST(Category2, FingerprintFrozenAcrossClaimedUas) {
  // The defining behaviour: changing the user-agent does not move the
  // fingerprint (§2.3 Category 2).
  const auto* model = find_model("Incogniton-3.2.7.7");
  ASSERT_NE(model, nullptr);
  bp::util::Rng rng(1);
  const auto a = make_profile(*model, chrome(60), rng);
  const auto b = make_profile(*model, chrome(113), rng);
  const auto c = make_profile(*model, firefox(110), rng);
  EXPECT_EQ(a.candidate_values, b.candidate_values);
  EXPECT_EQ(a.candidate_values, c.candidate_values);
}

TEST(Category2, FingerprintMatchesBaseEngine) {
  const auto* model = find_model("CheBrowser-0.3.38");
  bp::util::Rng rng(2);
  const auto profile = make_profile(*model, firefox(100), rng);
  EXPECT_EQ(profile.candidate_values,
            browser::baseline_candidates(browser::Engine::kBlink, 108));
}

TEST(Category2, MultiEngineToolPicksClosestBuild) {
  // GoLogin-3.3.23 ships Chrome 112 and Chrome 105 builds: a Chrome 104
  // victim profile loads the 105 build, a Chrome 113 victim the 112 one.
  const auto* model = find_model("GoLogin-3.3.23");
  bp::util::Rng rng(3);
  EXPECT_EQ(make_profile(*model, chrome(104), rng).candidate_values,
            browser::baseline_candidates(browser::Engine::kBlink, 105));
  EXPECT_EQ(make_profile(*model, chrome(113), rng).candidate_values,
            browser::baseline_candidates(browser::Engine::kBlink, 112));
}

TEST(Category2, ChromiumToolFallsBackForFirefoxClaims) {
  // No Gecko build shipped: Firefox claims land on the default engine.
  const auto* model = find_model("GoLogin-3.3.23");
  bp::util::Rng rng(4);
  EXPECT_EQ(make_profile(*model, firefox(110), rng).candidate_values,
            browser::baseline_candidates(browser::Engine::kBlink, 112));
}

TEST(Category2, GeckoToolUsesGeckoBuild) {
  const auto* model = find_model("AntBrowser");
  bp::util::Rng rng(5);
  EXPECT_EQ(make_profile(*model, firefox(110), rng).candidate_values,
            browser::baseline_candidates(browser::Engine::kGecko, 102));
}

TEST(Category1, FingerprintMatchesNoLegitimateRelease) {
  const auto* model = find_model("Linken Sphere-8.93");
  bp::util::Rng rng(6);
  const auto profile = make_profile(*model, chrome(100), rng);
  for (const auto& release : browser::ReleaseDatabase::instance().releases()) {
    EXPECT_NE(profile.candidate_values,
              browser::baseline_candidates(release.engine,
                                           release.engine_version))
        << "matched " << release.label();
  }
}

TEST(Category1, ProfilesVaryBetweenBuilds) {
  const auto* model = find_model("Linken Sphere-8.93");
  bp::util::Rng rng(7);
  const auto a = make_profile(*model, chrome(100), rng);
  const auto b = make_profile(*model, chrome(100), rng);
  EXPECT_NE(a.candidate_values, b.candidate_values);
}

TEST(Category3, FingerprintTracksClaimedUa) {
  const auto* model = find_model("AdsPower-5.4.20");
  bp::util::Rng rng(8);
  const auto profile = make_profile(*model, chrome(96), rng);
  EXPECT_EQ(profile.candidate_values,
            browser::baseline_candidates(browser::Engine::kBlink, 96));
  const auto ff = make_profile(*model, firefox(103), rng);
  EXPECT_EQ(ff.candidate_values,
            browser::baseline_candidates(browser::Engine::kGecko, 103));
}

TEST(Category3, UnknownClaimFallsBackToDefaultBuild) {
  const auto* model = find_model("AdsPower-5.4.20");
  bp::util::Rng rng(9);
  const auto profile =
      make_profile(*model, {ua::Vendor::kSafari, 16, ua::Os::kMacSonoma}, rng);
  EXPECT_EQ(profile.candidate_values,
            browser::baseline_candidates(browser::Engine::kBlink, 112));
}

TEST(Profiles, ClaimedUaIsPreserved) {
  const auto* model = find_model("Octo Browser-1.10");
  bp::util::Rng rng(10);
  const auto profile = make_profile(*model, firefox(97), rng);
  EXPECT_EQ(profile.claimed_ua, firefox(97));
  EXPECT_EQ(profile.browser_name, "Octo Browser-1.10");
}

TEST(EvaluationProfiles, CustomizableToolHonorsRequestedUas) {
  const auto* model = find_model("Incogniton-3.2.7.7");
  bp::util::Rng rng(11);
  const std::vector<ua::UserAgent> uas = {chrome(60), chrome(112), firefox(95)};
  const auto profiles = make_evaluation_profiles(*model, uas, 2, rng);
  ASSERT_EQ(profiles.size(), 6u);
  EXPECT_EQ(profiles[0].claimed_ua, chrome(60));
  EXPECT_EQ(profiles[5].claimed_ua, firefox(95));
}

TEST(EvaluationProfiles, SphereInjectsBuiltinOldChromeUas) {
  // §7.2: the free Sphere tier forces old-Chrome profiles on a third of
  // the attempts.
  const auto* model = find_model("Sphere-1.3");
  bp::util::Rng rng(12);
  const std::vector<ua::UserAgent> uas = {firefox(110), chrome(113),
                                          chrome(80)};
  const auto profiles = make_evaluation_profiles(*model, uas, 3, rng);
  ASSERT_EQ(profiles.size(), 9u);
  std::size_t builtin = 0;
  for (const auto& profile : profiles) {
    if (profile.claimed_ua.vendor == ua::Vendor::kChrome &&
        profile.claimed_ua.major_version >= 63 &&
        profile.claimed_ua.major_version <= 65) {
      ++builtin;
    }
  }
  EXPECT_EQ(builtin, 3u);
}

// Property: every category-2 tool in the roster freezes its fingerprint
// under UA changes, and every tool's profile preserves the claimed UA.
class RosterSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RosterSweep, CategoryContractsHold) {
  const auto roster = table1_roster();
  const auto& model = roster[GetParam() % roster.size()];
  bp::util::Rng rng(GetParam() + 100);

  const auto a = make_profile(model, chrome(95), rng);
  const auto b = make_profile(model, chrome(114), rng);
  EXPECT_EQ(a.claimed_ua, chrome(95));
  EXPECT_EQ(b.claimed_ua, chrome(114));
  EXPECT_EQ(a.category, model.category);

  if (model.category == FraudCategory::kCategory2 &&
      model.name != "GoLogin-3.3.23" && model.name != "Gologin-3.2.19" &&
      model.name != "Octo Browser-1.10") {
    // Single-build category-2 tools: identical fingerprints regardless
    // of the claim (multi-build tools may switch engines).
    EXPECT_EQ(a.candidate_values, b.candidate_values) << model.name;
  }
  if (model.category == FraudCategory::kCategory3) {
    EXPECT_EQ(a.candidate_values,
              browser::baseline_candidates(browser::Engine::kBlink, 95));
  }
}

INSTANTIATE_TEST_SUITE_P(AllTools, RosterSweep,
                         ::testing::Range<std::size_t>(0, 12));

}  // namespace
}  // namespace bp::fraudsim
