#include "fraudsim/fraud_browser.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

#include "browser/engine_timelines.h"

namespace bp::fraudsim {

namespace {

using browser::Engine;
using bp::util::Date;

// A shipped engine build a category-2 browser can load profiles into.
struct ShippedEngine {
  Engine engine;
  int version;
};

struct ModelSpec {
  FraudBrowserModel model;
  std::vector<ShippedEngine> engines;  // first entry = default build
  std::vector<ua::UserAgent> builtin_profile_uas;  // non-customizable tiers
};

const std::vector<ModelSpec>& specs() {
  static const std::vector<ModelSpec> all = [] {
    std::vector<ModelSpec> s;

    auto add = [&](FraudBrowserModel m, std::vector<ShippedEngine> engines,
                   std::vector<ua::UserAgent> builtin = {}) {
      m.base_engine = engines.front().engine;
      m.base_engine_version = engines.front().version;
      s.push_back(ModelSpec{std::move(m), std::move(engines),
                            std::move(builtin)});
    };

    // --- Category 1: custom engine builds with distorted prototypes ---
    add({.name = "Linken Sphere-8.93",
         .category = FraudCategory::kCategory1,
         .release_date = Date::from_ymd(2022, 4, 15),
         .ships_new_releases = false,
         .distortion_features = 10,
         .distortion_magnitude = 7},
        {{Engine::kBlink, 100}});
    add({.name = "ClonBrowser-4.6.6",
         .category = FraudCategory::kCategory1,
         .release_date = Date::from_ymd(2023, 5, 15),
         .ships_new_releases = true,
         .distortion_features = 8,
         .distortion_magnitude = 5},
        {{Engine::kBlink, 112}});

    // --- Category 2: frozen legitimate fingerprints ---
    add({.name = "Incogniton-3.2.7.7",
         .category = FraudCategory::kCategory2,
         .release_date = Date::from_ymd(2023, 5, 10),
         .ships_new_releases = true},
        {{Engine::kBlink, 110}});
    add({.name = "Gologin-3.2.19",
         .category = FraudCategory::kCategory2,
         .release_date = Date::from_ymd(2023, 5, 20),
         .ships_new_releases = true},
        {{Engine::kBlink, 110}, {Engine::kBlink, 104}});
    // The newer build used in the §7.2 detection experiment (Table 5).
    add({.name = "GoLogin-3.3.23",
         .category = FraudCategory::kCategory2,
         .release_date = Date::from_ymd(2023, 9, 5),
         .ships_new_releases = true},
        {{Engine::kBlink, 112}, {Engine::kBlink, 105}});
    add({.name = "CheBrowser-0.3.38",
         .category = FraudCategory::kCategory2,
         .release_date = Date::from_ymd(2023, 5, 5),
         .ships_new_releases = true},
        {{Engine::kBlink, 108}});
    add({.name = "VMLogin-1.3.8.5",
         .category = FraudCategory::kCategory2,
         .release_date = Date::from_ymd(2023, 4, 12),
         .ships_new_releases = true},
        {{Engine::kBlink, 109}});
    add({.name = "Octo Browser-1.10",
         .category = FraudCategory::kCategory2,
         .release_date = Date::from_ymd(2023, 9, 20),
         .ships_new_releases = true},
        {{Engine::kBlink, 114}, {Engine::kBlink, 110}});
    // Sphere 1.3's free tier ships profiles pinned to old Chrome UAs and
    // a fingerprint emulating roughly Chrome 61 (§7.2).
    add({.name = "Sphere-1.3",
         .category = FraudCategory::kCategory2,
         .release_date = Date::from_ymd(2023, 11, 10),
         .ships_new_releases = false},
        {{Engine::kBlink, 61}},
        {ua::UserAgent{ua::Vendor::kChrome, 63, ua::Os::kWindows10},
         ua::UserAgent{ua::Vendor::kChrome, 64, ua::Os::kWindows10},
         ua::UserAgent{ua::Vendor::kChrome, 65, ua::Os::kWindows10}});
    add({.name = "AntBrowser",
         .category = FraudCategory::kCategory2,
         .release_date = Date::from_ymd(2023, 5, 1),
         .ships_new_releases = false},
        {{Engine::kGecko, 102}});

    // --- Category 3: engine swapped to match the selected UA ---
    add({.name = "AdsPower-4.12.27",
         .category = FraudCategory::kCategory3,
         .release_date = Date::from_ymd(2022, 12, 10),
         .ships_new_releases = true},
        {{Engine::kBlink, 108}});
    add({.name = "AdsPower-5.4.20",
         .category = FraudCategory::kCategory3,
         .release_date = Date::from_ymd(2023, 4, 20),
         .ships_new_releases = true},
        {{Engine::kBlink, 112}});

    return s;
  }();
  return all;
}

const ModelSpec* find_spec(std::string_view name) {
  for (const auto& spec : specs()) {
    if (spec.model.name == name) return &spec;
  }
  return nullptr;
}

// Closest shipped engine for a claimed UA: same lineage preferred, then
// minimal version distance; falls back to the default build.
ShippedEngine choose_engine(const ModelSpec& spec,
                            const ua::UserAgent& claimed) {
  const bool wants_gecko = claimed.vendor == ua::Vendor::kFirefox;
  const ShippedEngine* best = nullptr;
  int best_distance = 1 << 30;
  for (const auto& e : spec.engines) {
    const bool is_gecko = e.engine == Engine::kGecko;
    if (is_gecko != wants_gecko) continue;
    const int distance = std::abs(e.version - claimed.major_version);
    if (distance < best_distance) {
      best_distance = distance;
      best = &e;
    }
  }
  return best != nullptr ? *best : spec.engines.front();
}

browser::CandidateValues category1_values(const ModelSpec& spec,
                                          bp::util::Rng& rng) {
  browser::CandidateValues values = browser::baseline_candidates(
      spec.model.base_engine, spec.model.base_engine_version);
  const auto& catalog = browser::FeatureCatalog::instance();
  const auto& finals = catalog.final_indices();

  // Distort a mix of production and non-production features so the
  // resulting fingerprint matches no legitimate release.  At least half
  // of the distortions hit the production 22 (custom engine builds leak
  // everywhere, including the high-signal prototypes).
  const int n = spec.model.distortion_features;
  for (int i = 0; i < n; ++i) {
    std::size_t idx;
    if (i % 2 == 0) {
      idx = finals[static_cast<std::size_t>(rng.below(22))];
    } else {
      idx = static_cast<std::size_t>(rng.below(200));
    }
    const int magnitude =
        2 + static_cast<int>(rng.below(
                static_cast<std::uint64_t>(spec.model.distortion_magnitude)));
    values[idx] = std::max(0, values[idx] + (rng.chance(0.5) ? magnitude
                                                             : -magnitude));
  }
  return values;
}

}  // namespace

std::span<const FraudBrowserModel> table1_roster() {
  static const std::vector<FraudBrowserModel> roster = [] {
    std::vector<FraudBrowserModel> out;
    for (const auto& spec : specs()) out.push_back(spec.model);
    return out;
  }();
  return roster;
}

const FraudBrowserModel* find_model(std::string_view name) {
  const ModelSpec* spec = find_spec(name);
  return spec != nullptr ? &spec->model : nullptr;
}

FraudProfile make_profile(const FraudBrowserModel& model,
                          const ua::UserAgent& victim_ua,
                          bp::util::Rng& rng) {
  const ModelSpec* spec = find_spec(model.name);
  assert(spec != nullptr);

  FraudProfile profile;
  profile.browser_name = model.name;
  profile.category = model.category;
  profile.claimed_ua = victim_ua;

  switch (model.category) {
    case FraudCategory::kCategory1:
      profile.candidate_values = category1_values(*spec, rng);
      break;
    case FraudCategory::kCategory2: {
      const ShippedEngine engine = choose_engine(*spec, victim_ua);
      profile.candidate_values =
          browser::baseline_candidates(engine.engine, engine.version);
      break;
    }
    case FraudCategory::kCategory3:
    case FraudCategory::kCategory4: {
      // Internally consistent: the fingerprint is the claimed release's
      // own (category 3 swaps the engine in, category 4 *is* the real
      // browser).  Unknown claimed releases fall back to the default
      // build, which degrades category 3 toward category 2 — exactly
      // what AdsPower does when asked for an engine it does not ship.
      const auto* release =
          browser::ReleaseDatabase::instance().find(victim_ua);
      if (release != nullptr) {
        profile.candidate_values = browser::baseline_candidates(
            release->engine, release->engine_version);
      } else {
        profile.candidate_values = browser::baseline_candidates(
            spec->model.base_engine, spec->model.base_engine_version);
      }
      break;
    }
  }
  return profile;
}

std::vector<FraudProfile> make_evaluation_profiles(
    const FraudBrowserModel& model,
    std::span<const ua::UserAgent> candidate_uas, int per_ua,
    bp::util::Rng& rng) {
  const ModelSpec* spec = find_spec(model.name);
  assert(spec != nullptr);

  std::vector<FraudProfile> out;
  const std::size_t total = candidate_uas.size() * static_cast<std::size_t>(per_ua);

  if (!spec->builtin_profile_uas.empty()) {
    // Non-customizable tier: one third of the attempts end up on the
    // builtin (old-Chrome) profiles, the rest on the requested UAs —
    // matching the §7.2 description of Sphere 1.3.
    for (std::size_t i = 0; i < total; ++i) {
      const ua::UserAgent ua =
          i % 3 == 0 ? spec->builtin_profile_uas[(i / 3) %
                                                 spec->builtin_profile_uas.size()]
                     : candidate_uas[i % candidate_uas.size()];
      out.push_back(make_profile(model, ua, rng));
    }
    return out;
  }

  for (const auto& ua : candidate_uas) {
    for (int i = 0; i < per_ua; ++i) {
      out.push_back(make_profile(model, ua, rng));
    }
  }
  return out;
}

}  // namespace bp::fraudsim
