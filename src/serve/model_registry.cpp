#include "serve/model_registry.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "obs/prof/contention.h"
#include "util/fault.h"

namespace bp::serve {

namespace {

// Publishes are rare, so the uncontended path is a plain try_lock; only
// an actual swap stall pays the clock reads and lands in /contentionz.
std::unique_lock<std::mutex> lock_publish_mutex(std::mutex& mutex) {
  std::unique_lock lock(mutex, std::try_to_lock);
  if (lock.owns_lock()) return lock;
  static obs::prof::ContentionSite& site =
      obs::prof::ContentionRegistry::instance().site(
          "serve.registry.publish_lock");
  const auto wait_begin = std::chrono::steady_clock::now();
  lock.lock();
  site.record_block(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wait_begin)
          .count()));
  return lock;
}

}  // namespace

std::uint64_t ModelRegistry::publish(
    std::shared_ptr<const core::Polygraph> model) {
  if (model == nullptr || !model->trained()) {
    publish_failures_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  const auto lock = lock_publish_mutex(publish_mutex_);
  return publish_locked(std::move(model));
}

std::uint64_t ModelRegistry::publish_locked(
    std::shared_ptr<const core::Polygraph> model) {
  const std::uint64_t version = published_.load(std::memory_order_relaxed) + 1;
  history_.push_back(
      std::make_unique<const Entry>(Entry{std::move(model), version}));
  current_.store(history_.back().get(), std::memory_order_release);
  published_.store(version, std::memory_order_release);
  return version;
}

std::uint64_t ModelRegistry::publish(core::Polygraph model) {
  return publish(std::make_shared<const core::Polygraph>(std::move(model)));
}

PublishReport ModelRegistry::publish_from_file(const std::string& path,
                                               bool quarantine_on_failure) {
  PublishReport report;
  auto loaded = core::load_model(path);
  std::optional<core::LoadError> error;
  if (!loaded.has_value()) {
    error = loaded.error();
  } else if (!loaded->trained()) {
    // Structurally valid but unservable (e.g. zero centroids).
    error = core::LoadError{core::LoadErrorCode::kBadSection, 0, "untrained"};
  } else if (FAULT_POINT("registry.publish_validate")) {
    error = core::LoadError{core::LoadErrorCode::kInjectedFault, 0,
                            "registry.publish_validate"};
  }

  if (error) {
    publish_failures_.fetch_add(1, std::memory_order_relaxed);
    report.error = std::move(*error);
    // Quarantine only artifacts that exist but failed validation; a
    // missing file has nothing to move aside.
    if (quarantine_on_failure &&
        report.error->code != core::LoadErrorCode::kFileMissing) {
      const std::string quarantine = path + ".quarantined";
      if (std::rename(path.c_str(), quarantine.c_str()) == 0) {
        report.quarantined_to = quarantine;
        quarantined_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return report;
  }

  report.version =
      publish(std::make_shared<const core::Polygraph>(std::move(*loaded)));
  return report;
}

std::uint64_t ModelRegistry::rollback() {
  const auto lock = lock_publish_mutex(publish_mutex_);
  if (history_.size() < 2) return 0;
  // The entry before the current head; republished as a new version so
  // detections stay attributable to exactly one publish event.
  const Entry& previous = *history_[history_.size() - 2];
  return publish_locked(previous.model);
}

ModelSnapshot ModelRegistry::at_version(std::uint64_t version) const {
  std::lock_guard lock(publish_mutex_);
  // Versions are assigned in publish order, so history_ is sorted;
  // a linear scan from the back finds recent versions fastest (the
  // audit trail mostly replays against the latest few).
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if ((*it)->version == version) return {(*it)->model, (*it)->version};
  }
  return {};
}

ModelSnapshot ModelRegistry::current() const {
  const Entry* entry = current_.load(std::memory_order_acquire);
  if (entry == nullptr) return {};
  // Safe without a reference count: entries are immutable and outlive
  // every reader (retained in history_ until the registry dies).
  return {entry->model, entry->version};
}

}  // namespace bp::serve
