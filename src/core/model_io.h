// Model persistence.
//
// Training runs offline (§6.5); the serving tier loads a frozen model.
// The format is a line-oriented text file — human-diffable, so model
// updates can be code-reviewed the way FinOrg's risk team reviews rule
// changes — with a version header for forward compatibility.
#pragma once

#include <optional>
#include <string>

#include "core/polygraph.h"

namespace bp::core {

// Serialize a trained model.  The result is self-contained: config,
// scaler parameters, PCA projection, k-means centroids and the
// UA <-> cluster table.
std::string serialize_model(const Polygraph& model);

// Parse a serialized model; nullopt on any structural error (bad header,
// truncated matrix, malformed numbers).
std::optional<Polygraph> deserialize_model(const std::string& text);

// File helpers; false on IO or parse failure.
bool save_model(const Polygraph& model, const std::string& path);
std::optional<Polygraph> load_model(const std::string& path);

}  // namespace bp::core
