// Tests for the deterministic PRNG substrate (util/rng.h).
#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>

namespace bp::util {
namespace {

TEST(SplitMix, IsDeterministic) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(SplitMix, AdvancesState) {
  std::uint64_t s = 42;
  const auto first = splitmix64(s);
  const auto second = splitmix64(s);
  EXPECT_NE(first, second);
}

TEST(Mix64, IsStateless) { EXPECT_EQ(mix64(7), mix64(7)); }

TEST(Mix64, SpreadsNearbyInputs) {
  // Consecutive integers must not map to nearby outputs.
  EXPECT_GT(mix64(1) ^ mix64(2), 1u << 20);
}

TEST(Fnv1a, MatchesKnownVector) {
  // FNV-1a 64-bit of "a" is a published constant.
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
}

TEST(Fnv1a, DiffersByContent) {
  EXPECT_NE(fnv1a("Element"), fnv1a("Document"));
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedDifferentStream) {
  Rng a(123);
  Rng b(124);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(9);
  const auto first = a.next();
  a.reseed(9);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(-5.0, 3.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, BelowIsBounded) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(rng.below(7), 7u);
}

TEST(Rng, BelowZeroReturnsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng rng(4);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 60'000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(6)];
  for (const auto& [value, count] : counts) {
    EXPECT_NEAR(count, kDraws / 6, kDraws / 6 * 0.1) << "value " << value;
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BetweenDegenerate) {
  Rng rng(5);
  EXPECT_EQ(rng.between(3, 3), 3);
  EXPECT_EQ(rng.between(3, 1), 3);  // inverted range collapses to lo
}

TEST(Rng, ChanceExtremes) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(7);
  int hits = 0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(Rng, NormalMomentsAreStandard) {
  Rng rng(8);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kDraws, 0.5, 0.03);
}

TEST(Rng, IntegerNoiseZeroProbability) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.integer_noise(0.0), 0);
}

TEST(Rng, IntegerNoiseAlwaysNonZeroAtFullProbability) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_NE(rng.integer_noise(1.0), 0);
}

TEST(Rng, WeightedHonorsZeroWeights) {
  Rng rng(12);
  const double weights[] = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.weighted(weights), 1u);
  }
}

TEST(Rng, WeightedAllZeroReturnsSize) {
  Rng rng(13);
  const double weights[] = {0.0, 0.0};
  EXPECT_EQ(rng.weighted(weights), 2u);
}

TEST(Rng, WeightedEmptyReturnsZeroSize) {
  Rng rng(13);
  EXPECT_EQ(rng.weighted({}), 0u);
}

TEST(Rng, WeightedMatchesRatios) {
  Rng rng(14);
  const double weights[] = {1.0, 3.0};
  int second = 0;
  constexpr int kDraws = 40'000;
  for (int i = 0; i < kDraws; ++i) second += rng.weighted(weights) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(second) / kDraws, 0.75, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(15);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rng, SampleIndicesDistinctAndBounded) {
  Rng rng(16);
  const auto idx = rng.sample_indices(100, 30);
  EXPECT_EQ(idx.size(), 30u);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t i : idx) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesClampsToPopulation) {
  Rng rng(17);
  EXPECT_EQ(rng.sample_indices(5, 50).size(), 5u);
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng parent(18);
  Rng child_a = parent.fork(1);
  Rng child_b = parent.fork(1);  // parent state advanced -> different child
  EXPECT_NE(child_a.next(), child_b.next());
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng parent(19);
  Rng reference(19);
  (void)parent.split(0);
  (void)parent.split(7);
  // split() is const and pure: the parent stream is untouched.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(parent.next(), reference.next());
}

TEST(Rng, SplitIsDeterministic) {
  const Rng parent(20);
  Rng a = parent.split(3);
  Rng b = parent.split(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitStreamsDoNotCollide) {
  // Pre-split streams back the per-restart / per-tree / per-shard RNGs
  // of the parallel training pipeline: distinct stream ids must yield
  // distinct, non-overlapping sequences.  Check the first draws of many
  // streams for collisions, and full prefixes for pairwise equality.
  const Rng parent(21);
  constexpr std::uint64_t kStreams = 4'096;
  std::set<std::uint64_t> first_draws;
  for (std::uint64_t id = 0; id < kStreams; ++id) {
    first_draws.insert(parent.split(id).next());
  }
  EXPECT_EQ(first_draws.size(), kStreams);

  constexpr int kPrefix = 16;
  std::set<std::vector<std::uint64_t>> prefixes;
  for (std::uint64_t id = 0; id < 64; ++id) {
    Rng stream = parent.split(id);
    std::vector<std::uint64_t> prefix;
    for (int i = 0; i < kPrefix; ++i) prefix.push_back(stream.next());
    prefixes.insert(std::move(prefix));
  }
  EXPECT_EQ(prefixes.size(), 64u);
}

TEST(Rng, SplitDependsOnParentState) {
  Rng a(22);
  Rng b(22);
  (void)b.next();  // advance b: same id must now yield a different stream
  EXPECT_NE(a.split(5).next(), b.split(5).next());
}

TEST(Rng, SplitDiffersFromParentStream) {
  const Rng parent(23);
  Rng copy = parent;
  Rng child = parent.split(0);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += copy.next() == child.next() ? 1 : 0;
  EXPECT_LT(equal, 3);
}

// Property sweep: bounds and determinism hold across seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, BoundedDrawsAndDeterminism) {
  Rng a(GetParam());
  Rng b(GetParam());
  for (int i = 0; i < 500; ++i) {
    const auto bound = 1 + (i % 97);
    const auto va = a.below(static_cast<std::uint64_t>(bound));
    const auto vb = b.below(static_cast<std::uint64_t>(bound));
    EXPECT_EQ(va, vb);
    EXPECT_LT(va, static_cast<std::uint64_t>(bound));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xDEADBEEFULL,
                                           0xFFFFFFFFFFFFFFFFULL,
                                           20230301ULL, 977ULL, 31337ULL));

}  // namespace
}  // namespace bp::util
