#include "obs/introspect/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace bp::obs::introspect {

namespace {

// Largest request head we will buffer before answering 400.  Every
// legitimate introspection request fits in a fraction of this.
constexpr std::size_t kMaxHeadBytes = 8192;

void set_io_timeout(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

IntrospectionServer::IntrospectionServer(Sources sources, ServerConfig config)
    : sources_(std::move(sources)), config_(std::move(config)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    error_ = "inet_pton: invalid bind address '" + config_.bind_address + "'";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    error_ = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  if (::listen(listen_fd_, 64) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }

  // Port 0 binds ephemerally; read the kernel's choice back so tests
  // (and the tier-1 smoke) can address the server.
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  running_.store(true, std::memory_order_release);
  const std::size_t n_handlers = std::max<std::size_t>(
      config_.handler_threads, 1);
  handlers_.reserve(n_handlers);
  for (std::size_t i = 0; i < n_handlers; ++i) {
    handlers_.emplace_back([this] { handler_loop(); });
  }
  acceptor_ = std::thread([this] { acceptor_loop(); });
}

IntrospectionServer::~IntrospectionServer() { stop(); }

std::string IntrospectionServer::error() const {
  std::lock_guard lock(error_mutex_);
  return error_;
}

void IntrospectionServer::acceptor_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listen socket is gone; stop() is the only cause
    }
    set_io_timeout(fd, config_.io_timeout);
    {
      std::lock_guard lock(queue_mutex_);
      if (pending_.size() >= config_.max_pending) {
        // Shed at accept: better to drop a scrape than to queue
        // unboundedly — the scraper will simply retry next cadence.
        overloaded_.fetch_add(1, std::memory_order_relaxed);
        ::close(fd);
        continue;
      }
      pending_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void IntrospectionServer::handler_loop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [&] {
        return stopping_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (pending_.empty()) return;  // stopping and drained
      fd = pending_.front();
      pending_.pop_front();
    }
    serve_connection(fd);
    ::close(fd);
  }
}

void IntrospectionServer::serve_connection(int fd) {
  std::string head;
  char buf[2048];
  while (head.find("\r\n\r\n") == std::string::npos) {
    if (head.size() > kMaxHeadBytes) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;  // timeout or peer went away: nothing to answer
    head.append(buf, static_cast<std::size_t>(n));
  }

  HttpResponse response;
  HttpRequest request;
  if (!parse_request_head(head, &request)) {
    response.status = 400;
    response.body = "malformed request\n";
  } else if (request.method != "GET") {
    response.status = 405;
    response.body = "only GET is served here\n";
  } else {
    response = handle(request);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  send_all(fd, serialize_response(response));
}

HttpResponse IntrospectionServer::handle(const HttpRequest& request) const {
  HttpResponse response;
  if (request.path == "/metrics") {
    if (sources_.metrics == nullptr) {
      response.status = 404;
      response.body = "no metrics registry attached\n";
      return response;
    }
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = sources_.metrics->render_prometheus();
    return response;
  }
  if (request.path == "/metrics.json") {
    if (sources_.metrics == nullptr) {
      response.status = 404;
      response.body = "no metrics registry attached\n";
      return response;
    }
    response.content_type = "application/json";
    response.body = sources_.metrics->render_json();
    return response;
  }
  if (request.path == "/healthz") {
    if (sources_.health == nullptr) {
      // No health model: answering at all is the liveness proof.
      response.body = "ok\n";
      return response;
    }
    const slo::HealthReport report = sources_.health->evaluate();
    response.status = report.live ? 200 : 503;
    response.body = report.live ? "ok\n" : report.detail;
    return response;
  }
  if (request.path == "/readyz") {
    if (sources_.health == nullptr) {
      response.status = 503;
      response.body = "no health model attached\n";
      return response;
    }
    const slo::HealthReport report = sources_.health->evaluate();
    response.status = report.ready ? 200 : 503;
    response.body = report.ready ? "ok\n" : report.detail;
    return response;
  }
  if (request.path == "/statusz") {
    response.body = render_statusz();
    return response;
  }
  if (request.path == "/tracez") {
    if (sources_.trace == nullptr) {
      response.status = 404;
      response.body = "no trace sink attached\n";
      return response;
    }
    response.body = sources_.trace->render(/*include_timing=*/true);
    return response;
  }
  if (request.path == "/auditz") {
    if (sources_.audit == nullptr) {
      response.status = 404;
      response.body = "no audit trail attached\n";
      return response;
    }
    const std::uint64_t n = query_uint(request.query, "n", 100);
    response.content_type = "application/jsonl";
    response.body = sources_.audit->render_jsonl(
        /*include_timing=*/true, static_cast<std::size_t>(n));
    return response;
  }
  response.status = 404;
  response.body =
      "not found; endpoints: /metrics /metrics.json /healthz /readyz "
      "/statusz /tracez /auditz?n=K\n";
  return response;
}

std::string IntrospectionServer::render_statusz() const {
  std::string out = "browser-polygraph introspection\n";
  out += "requests_served: " + std::to_string(requests()) + "\n";
  if (sources_.health != nullptr) {
    out += "\n-- health --\n" + sources_.health->evaluate().detail;
  }
  if (sources_.slo != nullptr) {
    out += "\n-- slo rules --\n" + sources_.slo->render_statuses();
    const std::string transitions = sources_.slo->render_transitions();
    if (!transitions.empty()) {
      out += "\n-- alert transitions --\n" + transitions;
    }
  }
  if (sources_.statusz_extra) {
    const std::string extra = sources_.statusz_extra();
    if (!extra.empty()) out += "\n-- service --\n" + extra;
  }
  return out;
}

void IntrospectionServer::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // A second stop() only needs the threads gone (the first caller
    // may still be joining them; joinable() guards double-join below
    // only against the state this object's own calls leave behind).
  }
  // Unblock accept() by shutting the listening socket down before
  // closing it; handlers wake via the cv and drain what was accepted.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& handler : handlers_) {
    if (handler.joinable()) handler.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Connections accepted but never picked up: close them so curl gets
  // a reset instead of a hang.
  std::lock_guard lock(queue_mutex_);
  for (int fd : pending_) ::close(fd);
  pending_.clear();
  running_.store(false, std::memory_order_release);
}

}  // namespace bp::obs::introspect
