// Seeded mutation fuzz for the wire parsers (net/wire.h): byte flips,
// truncations, insertions and random garbage against
// parse_score_request / parse_score_response.  The contract under
// fuzz: the parser never crashes and always returns a typed WireError;
// when a mutation happens to leave a frame valid, the parsed result
// still satisfies the grammar's invariants.  Mutations are drawn from
// a splitmix64 stream, so a failing case replays from the seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.h"
#include "util/rng.h"

namespace bp::net {
namespace {

// One deterministic mutation of `frame` drawn from `state`.
std::string mutate(const std::string& frame, std::uint64_t& state) {
  std::string out = frame;
  const std::uint64_t op = util::splitmix64(state) % 4;
  const std::uint64_t a = util::splitmix64(state);
  const std::uint64_t b = util::splitmix64(state);
  switch (op) {
    case 0: {  // flip one byte
      if (out.empty()) break;
      char flip = static_cast<char>(b & 0xff);
      if (flip == 0) flip = 1;
      out[a % out.size()] ^= flip;
      break;
    }
    case 1:  // truncate
      out.resize(a % (out.size() + 1));
      break;
    case 2:  // insert a byte
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(a % (out.size() + 1)),
                 static_cast<char>(b & 0xff));
      break;
    default: {  // duplicate a span (framing confusion)
      if (out.empty()) break;
      const std::size_t begin = a % out.size();
      const std::size_t len = 1 + b % (out.size() - begin);
      out.insert(begin, out.substr(begin, len));
      break;
    }
  }
  return out;
}

std::string valid_request() {
  // Production-shaped: 28 features, a real-looking UA.
  std::vector<std::int32_t> features;
  for (int i = 0; i < 28; ++i) features.push_back(i * 37 - 40);
  std::string frame;
  render_score_request(
      0x1234567890ABCDEFull,
      "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
      "(KHTML, like Gecko) Chrome/112.0.0.0 Safari/537.36",
      features, &frame);
  return frame;
}

std::string valid_response() {
  WireScoreResponse response;
  response.session_id = 0xFEDCBA9876543210ull;
  response.status = serve::ResponseStatus::kScored;
  response.flagged = true;
  response.risk_factor = 3;
  response.predicted_cluster = 17;
  response.model_version = 42;
  response.latency_micros = 1234;
  std::string frame;
  render_score_response(response, &frame);
  return frame;
}

TEST(WireFuzz, MutatedRequestsNeverCrashAndStayTyped) {
  const std::string frame = valid_request();
  std::uint64_t state = 0xF00D;
  WireScoreRequest parsed;  // reused, like the ingress does
  int accepted = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::string mutated = mutate(frame, state);
    const WireError error = parse_score_request(mutated, &parsed);
    ASSERT_FALSE(wire_error_name(error).empty()) << "iteration " << i;
    if (error != WireError::kOk) continue;
    ++accepted;
    // A mutation that stays valid must still satisfy the grammar.
    ASSERT_FALSE(parsed.features.empty()) << "iteration " << i;
    ASSERT_LE(parsed.features.size(), kMaxWireFeatures) << "iteration " << i;
  }
  // Most single mutations of a 28-feature frame break it; a few are
  // benign (a flipped UA byte, a truncated feature list).  Both sides
  // must occur for the fuzz to mean anything.
  EXPECT_GT(accepted, 0);
  EXPECT_LT(accepted, 2500);
}

TEST(WireFuzz, MutatedResponsesNeverCrashAndStayTyped) {
  const std::string frame = valid_response();
  std::uint64_t state = 0xBEEF;
  WireScoreResponse parsed;
  for (int i = 0; i < 5000; ++i) {
    const std::string mutated = mutate(frame, state);
    const WireError error = parse_score_response(mutated, &parsed);
    ASSERT_FALSE(wire_error_name(error).empty()) << "iteration " << i;
  }
}

// Stacked mutations: each round mutates the previous round's output,
// drifting arbitrarily far from a valid frame.
TEST(WireFuzz, StackedMutationsStayTyped) {
  std::uint64_t state = 0xCAFE;
  std::string frame = valid_request();
  WireScoreRequest parsed;
  for (int round = 0; round < 1500; ++round) {
    frame = mutate(frame, state);
    if (frame.size() > kMaxFrameBytes + 64) frame = valid_request();
    const WireError error = parse_score_request(frame, &parsed);
    ASSERT_FALSE(wire_error_name(error).empty()) << "round " << round;
  }
}

TEST(WireFuzz, RandomGarbageIsRefusedNotCrashed) {
  std::uint64_t state = 0xD15EA5E;
  WireScoreRequest request;
  WireScoreResponse response;
  for (int i = 0; i < 1000; ++i) {
    const std::size_t len = util::splitmix64(state) % 300;
    std::string garbage(len, '\0');
    for (char& c : garbage) {
      c = static_cast<char>(util::splitmix64(state) & 0xff);
    }
    EXPECT_NE(parse_score_request(garbage, &request), WireError::kOk);
    // (An all-random frame alias of the response grammar is
    // astronomically unlikely; refusal is the expected outcome.)
    EXPECT_NE(parse_score_response(garbage, &response), WireError::kOk);
  }
}

TEST(WireFuzz, EveryPrefixOfAValidFrameIsHandled) {
  const std::string request = valid_request();
  WireScoreRequest parsed_request;
  for (std::size_t len = 0; len < request.size(); ++len) {
    const WireError error =
        parse_score_request(request.substr(0, len), &parsed_request);
    // A strict prefix may itself be a valid frame (fewer features);
    // anything else must be a typed refusal.
    ASSERT_FALSE(wire_error_name(error).empty()) << "prefix " << len;
    if (error == WireError::kOk) {
      ASSERT_LE(parsed_request.features.size(), 28u);
    }
  }
  const std::string response = valid_response();
  WireScoreResponse parsed_response;
  for (std::size_t len = 0; len < response.size(); ++len) {
    ASSERT_FALSE(
        wire_error_name(parse_score_response(response.substr(0, len),
                                             &parsed_response))
            .empty())
        << "prefix " << len;
  }
}

TEST(WireFuzz, EveryWireErrorHasAName) {
  for (int e = 0; e <= static_cast<int>(WireError::kBadTraceContext); ++e) {
    EXPECT_FALSE(wire_error_name(static_cast<WireError>(e)).empty());
  }
}

// ------------------- trace-context extension segment -------------------

std::string valid_traced_request() {
  std::string frame = valid_request();
  append_trace_context({0xABCDEF0123456789ull, 10, true}, &frame);
  return frame;
}

// The adoption contract under fuzz: a mutated trace segment either
// parses to exactly the context the frame carries, or is refused with a
// typed error — a bogus trace id is never silently adopted.
TEST(WireFuzz, MutatedTracedRequestsNeverCrashOrAdoptBogusContext) {
  const std::string frame = valid_traced_request();
  std::uint64_t state = 0x7A5ED;
  WireScoreRequest parsed;
  int accepted = 0;
  int accepted_with_trace = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::string mutated = mutate(frame, state);
    const WireError error = parse_score_request(mutated, &parsed);
    ASSERT_FALSE(wire_error_name(error).empty()) << "iteration " << i;
    if (error != WireError::kOk) {
      // Refusals must leave no half-adopted context behind on reuse:
      // the next successful parse decides trace presence from scratch.
      continue;
    }
    ++accepted;
    ASSERT_FALSE(parsed.features.empty()) << "iteration " << i;
    if (parsed.trace.present()) {
      ++accepted_with_trace;
      // Whatever survived the mutation, the adopted context obeys the
      // grammar: nonzero id and a boolean sampled flag by construction.
      ASSERT_NE(parsed.trace.trace_id, 0u) << "iteration " << i;
    }
  }
  EXPECT_GT(accepted, 0);
  EXPECT_GT(accepted_with_trace, 0);
  EXPECT_LT(accepted, 2500);
}

// Targeted corpus: every structural way a t: segment can go wrong —
// flips of the separators, truncations inside the payload, duplicated
// separators — must yield a typed WireError, never a crash.
TEST(WireFuzz, TraceSegmentStructuralMutations) {
  const std::string frame = valid_traced_request();
  const std::size_t bar = frame.rfind('|');
  ASSERT_NE(bar, std::string::npos);
  WireScoreRequest parsed;

  // Truncate at every offset inside the extension segment.
  for (std::size_t len = bar; len < frame.size(); ++len) {
    const WireError error = parse_score_request(frame.substr(0, len), &parsed);
    ASSERT_FALSE(wire_error_name(error).empty()) << "truncate " << len;
    if (error == WireError::kOk && parsed.trace.present()) {
      // A cut anywhere inside the payload drops a ':'-part and is
      // refused; the only accepted-with-trace truncation is the one
      // that merely shaved the trailing newline — so an adopted
      // context is always the full original, never a digit-prefix id.
      ASSERT_EQ(parsed.trace.trace_id, 0xABCDEF0123456789ull)
          << "truncate " << len;
      ASSERT_EQ(parsed.trace.parent_span, 10u) << "truncate " << len;
      ASSERT_TRUE(parsed.trace.sampled) << "truncate " << len;
    }
  }

  // Flip every byte of the segment, one at a time.
  for (std::size_t i = bar; i < frame.size(); ++i) {
    for (const char flip : {'\x01', '\x20', '\x7f'}) {
      std::string mutated = frame;
      mutated[i] = static_cast<char>(mutated[i] ^ flip);
      ASSERT_FALSE(
          wire_error_name(parse_score_request(mutated, &parsed)).empty())
          << "flip at " << i;
    }
  }

  // Duplicated separators around and inside the segment.
  for (const char* mutated :
       {"bp1|1|Chrome 100|1 2||t:1:2:1", "bp1|1|Chrome 100|1 2|t::1:2:1",
        "bp1|1|Chrome 100|1 2|t:1::2:1", "bp1|1|Chrome 100|1 2|t:1:2:1||"}) {
    const WireError error = parse_score_request(mutated, &parsed);
    EXPECT_NE(error, WireError::kOk) << mutated;
    EXPECT_FALSE(wire_error_name(error).empty()) << mutated;
  }
}

// Stacked mutations drifting from a traced frame: same always-typed
// contract, now with the extension grammar in the blast radius.
TEST(WireFuzz, StackedTracedMutationsStayTyped) {
  std::uint64_t state = 0x7AC3D;
  std::string frame = valid_traced_request();
  WireScoreRequest parsed;
  for (int round = 0; round < 1500; ++round) {
    frame = mutate(frame, state);
    if (frame.size() > kMaxFrameBytes + 64) frame = valid_traced_request();
    const WireError error = parse_score_request(frame, &parsed);
    ASSERT_FALSE(wire_error_name(error).empty()) << "round " << round;
    if (error == WireError::kOk && parsed.trace.present()) {
      ASSERT_NE(parsed.trace.trace_id, 0u) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace bp::net
