// Browser environment: an actual engine installation plus the user-level
// modifications that §6.3's manual analysis found to perturb fingerprint
// values in the wild.
#pragma once

#include <cstdint>

#include "browser/release_db.h"
#include "ua/user_agent.h"

namespace bp::browser {

// Bitmask of environment modifications.
enum class Modifier : std::uint32_t {
  kNone = 0,
  // Chrome: the DuckDuckGo extension adds two custom properties to the
  // Element interface (§6.3).
  kDuckDuckGoExtension = 1u << 0,
  // Chrome: some other content-script extension injecting 1-3 properties
  // into Element/Document.
  kGenericExtension = 1u << 1,
  // Firefox about:config — dom.serviceWorkers.enabled=false zeroes the
  // ServiceWorker* interfaces (§6.3).
  kFirefoxNoServiceWorkers = 1u << 2,
  // Firefox about:config — dom.element.transform-getters.enabled
  // manipulations shift Element (§6.3).
  kFirefoxTransformGetters = 1u << 3,
  // Brave with standard shields: small reductions on fingerprintable
  // surfaces while presenting a Chrome user-agent (§6.3).
  kBraveStandardShields = 1u << 4,
  // Brave with aggressive shields: canvas/WebGL surfaces gutted.
  kBraveAggressiveShields = 1u << 5,
  // Tor Browser patchset on an ESR Gecko: WebGL/audio disabled, several
  // prototypes trimmed, while presenting the matching Firefox ESR UA.
  kTorPatchset = 1u << 6,
};

constexpr std::uint32_t operator|(Modifier a, Modifier b) noexcept {
  return static_cast<std::uint32_t>(a) | static_cast<std::uint32_t>(b);
}
constexpr std::uint32_t operator|(std::uint32_t a, Modifier b) noexcept {
  return a | static_cast<std::uint32_t>(b);
}
constexpr bool has_modifier(std::uint32_t mask, Modifier m) noexcept {
  return (mask & static_cast<std::uint32_t>(m)) != 0;
}

struct Environment {
  const BrowserRelease* release = nullptr;  // the engine actually running
  ua::Os os = ua::Os::kWindows10;
  std::uint32_t modifiers = 0;
  // Per-session salt: drives staggered-rollout membership and the exact
  // property counts injected by kGenericExtension.  Two sessions from the
  // same install should pass the same salt.
  std::uint64_t session_salt = 0;

  // The user-agent this environment presents by itself (before any fraud
  // spoofing): Brave reports its Chromium base version as Chrome, the Tor
  // patchset reports the matching Firefox ESR — both indistinguishable
  // from the genuine article at the UA level.
  ua::UserAgent presented_user_agent() const {
    ua::UserAgent ua = release->user_agent(os);
    if (has_modifier(modifiers, Modifier::kTorPatchset)) {
      ua.vendor = ua::Vendor::kFirefox;
    } else if (has_modifier(modifiers, Modifier::kBraveStandardShields) ||
               has_modifier(modifiers, Modifier::kBraveAggressiveShields)) {
      ua.vendor = ua::Vendor::kChrome;
    }
    return ua;
  }
};

}  // namespace bp::browser
