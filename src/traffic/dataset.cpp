#include "traffic/dataset.h"

#include <cassert>
#include <map>

#include "util/strings.h"

namespace bp::traffic {

ml::Matrix Dataset::feature_matrix(
    const std::vector<std::size_t>& wanted) const {
  // Map candidate index -> stored position.
  std::map<std::size_t, std::size_t> position;
  for (std::size_t i = 0; i < stored_indices_.size(); ++i) {
    position[stored_indices_[i]] = i;
  }
  std::vector<std::size_t> cols;
  cols.reserve(wanted.size());
  for (std::size_t idx : wanted) {
    const auto it = position.find(idx);
    assert(it != position.end() && "feature not stored in this dataset");
    cols.push_back(it->second);
  }

  ml::Matrix out(records_.size(), cols.size());
  for (std::size_t r = 0; r < records_.size(); ++r) {
    const auto& features = records_[r].features;
    for (std::size_t j = 0; j < cols.size(); ++j) {
      out(r, j) = static_cast<double>(features[cols[j]]);
    }
  }
  return out;
}

ml::Matrix Dataset::feature_matrix() const {
  return feature_matrix(stored_indices_);
}

std::vector<std::uint32_t> Dataset::ua_keys() const {
  std::vector<std::uint32_t> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(r.claimed.key());
  return out;
}

std::vector<std::string> Dataset::ua_labels() const {
  std::vector<std::string> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(r.claimed.label());
  return out;
}

std::vector<std::string> Dataset::fingerprint_strings() const {
  std::vector<std::string> out;
  out.reserve(records_.size());
  for (const auto& r : records_) {
    std::string s;
    s.reserve(r.features.size() * 4);
    for (std::int32_t v : r.features) {
      s += std::to_string(v);
      s += ',';
    }
    out.push_back(std::move(s));
  }
  return out;
}

Dataset Dataset::slice(bp::util::Date from, bp::util::Date to) const {
  Dataset out(stored_indices_);
  for (const auto& r : records_) {
    if (r.date >= from && r.date <= to) out.add(r);
  }
  return out;
}

bp::util::CsvTable Dataset::to_csv_table() const {
  bp::util::CsvTable table;
  table.header = {"session_id", "date",       "user_agent",
                  "untrusted_ip", "untrusted_cookie", "ato",
                  "kind",       "origin"};
  for (std::size_t idx : stored_indices_) {
    table.header.push_back("f" + std::to_string(idx));
  }
  for (const auto& r : records_) {
    std::vector<std::string> row = {
        r.session_id,
        r.date.to_string(),
        r.user_agent,
        r.untrusted_ip ? "1" : "0",
        r.untrusted_cookie ? "1" : "0",
        r.ato ? "1" : "0",
        std::to_string(static_cast<int>(r.kind)),
        r.origin,
    };
    for (std::int32_t v : r.features) row.push_back(std::to_string(v));
    table.rows.push_back(std::move(row));
  }
  return table;
}

Dataset Dataset::from_csv_table(const bp::util::CsvTable& table) {
  constexpr std::size_t kFixedColumns = 8;
  std::vector<std::size_t> indices;
  for (std::size_t c = kFixedColumns; c < table.header.size(); ++c) {
    const auto parsed = bp::util::parse_int(
        std::string_view(table.header[c]).substr(1));
    assert(parsed.has_value());
    indices.push_back(static_cast<std::size_t>(*parsed));
  }

  Dataset out(std::move(indices));
  for (const auto& row : table.rows) {
    assert(row.size() == table.header.size());
    SessionRecord r;
    r.session_id = row[0];
    // Date parse: YYYY-MM-DD.
    const auto parts = bp::util::split(row[1], '-');
    assert(parts.size() == 3);
    r.date = bp::util::Date::from_ymd(
        static_cast<int>(*bp::util::parse_int(parts[0])),
        static_cast<unsigned>(*bp::util::parse_int(parts[1])),
        static_cast<unsigned>(*bp::util::parse_int(parts[2])));
    r.user_agent = row[2];
    r.claimed = ua::parse_user_agent(r.user_agent);
    r.untrusted_ip = row[3] == "1";
    r.untrusted_cookie = row[4] == "1";
    r.ato = row[5] == "1";
    r.kind = static_cast<SessionKind>(*bp::util::parse_int(row[6]));
    r.origin = row[7];
    for (std::size_t c = kFixedColumns; c < row.size(); ++c) {
      r.features.push_back(
          static_cast<std::int32_t>(*bp::util::parse_int(row[c])));
    }
    out.add(std::move(r));
  }
  return out;
}

}  // namespace bp::traffic
