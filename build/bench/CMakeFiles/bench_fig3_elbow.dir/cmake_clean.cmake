file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_elbow.dir/bench_fig3_elbow.cpp.o"
  "CMakeFiles/bench_fig3_elbow.dir/bench_fig3_elbow.cpp.o.d"
  "bench_fig3_elbow"
  "bench_fig3_elbow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_elbow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
