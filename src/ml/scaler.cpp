#include "ml/scaler.h"

#include <cassert>

#include "util/parallel.h"

namespace bp::ml {

namespace {

constexpr std::size_t kRowGrain = 4096;

}  // namespace

void StandardScaler::fit(const Matrix& data) {
  fit(data, std::vector<bool>(data.cols(), true));
}

void StandardScaler::fit(const Matrix& data,
                         const std::vector<bool>& scale_column) {
  assert(scale_column.size() == data.cols());
  means_ = data.column_means();
  stddevs_ = data.column_stddevs(means_);
  for (std::size_t c = 0; c < data.cols(); ++c) {
    if (!scale_column[c]) {
      means_[c] = 0.0;
      stddevs_[c] = 1.0;
    } else if (stddevs_[c] == 0.0) {
      stddevs_[c] = 1.0;  // constant column: center only
    }
  }
}

Matrix StandardScaler::transform(const Matrix& data) const {
  assert(fitted() && data.cols() == means_.size());
  Matrix out(data.rows(), data.cols());
  bp::util::parallel_for(
      std::size_t{0}, data.rows(), kRowGrain,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          transform_row(data.row(r), out.row(r));
        }
      });
  return out;
}

Matrix StandardScaler::fit_transform(const Matrix& data) {
  fit(data);
  return transform(data);
}

void StandardScaler::transform_row(std::span<const double> in,
                                   std::span<double> out) const {
  assert(fitted() && in.size() == means_.size() && out.size() == in.size());
  for (std::size_t c = 0; c < in.size(); ++c) {
    out[c] = (in[c] - means_[c]) / stddevs_[c];
  }
}

StandardScaler StandardScaler::from_params(std::vector<double> means,
                                           std::vector<double> stddevs) {
  assert(means.size() == stddevs.size());
  StandardScaler scaler;
  scaler.means_ = std::move(means);
  scaler.stddevs_ = std::move(stddevs);
  return scaler;
}

Matrix StandardScaler::inverse_transform(const Matrix& data) const {
  assert(fitted() && data.cols() == means_.size());
  Matrix out(data.rows(), data.cols());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const auto src = data.row(r);
    const auto dst = out.row(r);
    for (std::size_t c = 0; c < data.cols(); ++c) {
      dst[c] = src[c] * stddevs_[c] + means_[c];
    }
  }
  return out;
}

}  // namespace bp::ml
