file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_sensitivity_pca.dir/bench_table11_sensitivity_pca.cpp.o"
  "CMakeFiles/bench_table11_sensitivity_pca.dir/bench_table11_sensitivity_pca.cpp.o.d"
  "bench_table11_sensitivity_pca"
  "bench_table11_sensitivity_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_sensitivity_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
