// Reproduces Figure 2: cumulative explained variance vs the number of
// PCA components on the scaled 28-feature training data.  The paper
// selects 7 components as the point capturing >= 98.5% of variance.
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "browser/feature_catalog.h"
#include "ml/pca.h"
#include "ml/scaler.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace bp;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 205'000;

  std::printf("=== Figure 2: cumulative variance vs PCA components ===\n");
  const auto data = benchmark_support::make_training_dataset(n);
  const auto& catalog = browser::FeatureCatalog::instance();
  const ml::Matrix features = data.feature_matrix(catalog.final_indices());

  std::vector<bool> scale_column;
  for (std::size_t idx : catalog.final_indices()) {
    scale_column.push_back(catalog.spec(idx).kind ==
                           browser::FeatureKind::kDeviationBased);
  }
  ml::StandardScaler scaler;
  scaler.fit(features, scale_column);

  ml::Pca pca;
  pca.fit(scaler.transform(features), catalog.final_count());
  const std::vector<double> cumulative = pca.cumulative_variance_ratio();

  std::vector<std::pair<std::string, double>> series;
  for (std::size_t i = 0; i < cumulative.size(); ++i) {
    char label[16];
    std::snprintf(label, sizeof(label), "%2zu", i + 1);
    series.emplace_back(label, 100.0 * cumulative[i]);
  }
  std::fputs(util::ascii_chart(series).c_str(), stdout);

  std::printf("\ncumulative variance at 7 components: %.2f%% (paper: >98.5%%)\n",
              100.0 * cumulative[6]);
  return 0;
}
