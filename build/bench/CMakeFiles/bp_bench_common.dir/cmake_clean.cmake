file(REMOVE_RECURSE
  "CMakeFiles/bp_bench_common.dir/appendix5_common.cpp.o"
  "CMakeFiles/bp_bench_common.dir/appendix5_common.cpp.o.d"
  "CMakeFiles/bp_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/bp_bench_common.dir/bench_common.cpp.o.d"
  "libbp_bench_common.a"
  "libbp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
