file(REMOVE_RECURSE
  "CMakeFiles/bp_ml.dir/isolation_forest.cpp.o"
  "CMakeFiles/bp_ml.dir/isolation_forest.cpp.o.d"
  "CMakeFiles/bp_ml.dir/kmeans.cpp.o"
  "CMakeFiles/bp_ml.dir/kmeans.cpp.o.d"
  "CMakeFiles/bp_ml.dir/matrix.cpp.o"
  "CMakeFiles/bp_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/bp_ml.dir/metrics.cpp.o"
  "CMakeFiles/bp_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/bp_ml.dir/pca.cpp.o"
  "CMakeFiles/bp_ml.dir/pca.cpp.o.d"
  "CMakeFiles/bp_ml.dir/scaler.cpp.o"
  "CMakeFiles/bp_ml.dir/scaler.cpp.o.d"
  "CMakeFiles/bp_ml.dir/stratified.cpp.o"
  "CMakeFiles/bp_ml.dir/stratified.cpp.o.d"
  "libbp_ml.a"
  "libbp_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
