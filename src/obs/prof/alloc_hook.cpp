// Optional allocation-count hook: global operator new/delete
// interposition that *counts* (never captures stacks, never samples).
//
// Built as the bp_prof_alloc OBJECT library so linking it is an
// explicit per-target decision, and the object file is always pulled
// into the link (no archive-member-selection surprises for a symbol
// libstdc++ also defines).  Counting itself is still gated off at
// runtime — see prof::set_alloc_counting — so linking the hook costs
// one relaxed load per allocation.
//
// Compiled out entirely under ASan/TSan: the sanitizer runtimes own the
// allocator seam and interposing under them is asking for trouble.
#include <cstddef>
#include <cstdlib>
#include <new>

#include "obs/prof/prof.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define BP_PROF_ALLOC_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define BP_PROF_ALLOC_DISABLED 1
#endif
#endif

#ifndef BP_PROF_ALLOC_DISABLED

namespace {

const bool bp_prof_alloc_registered = [] {
  bp::obs::prof::detail::mark_alloc_hook_linked();
  return true;
}();

void* counted_alloc(std::size_t size) noexcept {
  void* p = std::malloc(size != 0 ? size : 1);
  if (p != nullptr) bp::obs::prof::detail::note_allocation(size);
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) noexcept {
  // aligned_alloc demands size be a multiple of alignment; operator new
  // does not, so round up.
  const std::size_t rounded =
      alignment != 0 ? (size + alignment - 1) / alignment * alignment : size;
  void* p = std::aligned_alloc(alignment, rounded != 0 ? rounded : alignment);
  if (p != nullptr) bp::obs::prof::detail::note_allocation(size);
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // BP_PROF_ALLOC_DISABLED
