// Lloyd's k-means with k-means++ seeding.
//
// Paper §6.4.3 clusters the PCA-projected fingerprints with k-means,
// picking k = 11 via the elbow method (Figures 3 & 4).  We implement the
// standard algorithm with a few deployment-grade details:
//   * k-means++ initialization with a configurable number of restarts,
//     keeping the run with the lowest inertia (sklearn's n_init);
//   * empty-cluster repair by re-seeding from the point farthest from its
//     centroid;
//   * deterministic behaviour given an Rng seed.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/matrix.h"
#include "util/rng.h"

namespace bp::ml {

struct KMeansConfig {
  std::size_t k = 8;
  int max_iterations = 300;
  int n_init = 4;           // independent k-means++ restarts
  double tolerance = 1e-6;  // relative centroid-shift convergence bound
  std::uint64_t seed = 42;
};

class KMeans {
 public:
  explicit KMeans(KMeansConfig config = {}) : config_(config) {}

  // Fit on `data` (rows = observations).  Requires data.rows() >= k.
  void fit(const Matrix& data);

  // Nearest-centroid assignment for each row.
  std::vector<std::size_t> predict(const Matrix& data) const;
  std::size_t predict_one(std::span<const double> point) const;
  // Assignment plus the squared distance to the winning centroid (the
  // audit trail's per-decision evidence); `distance2` may be null.
  std::size_t predict_one(std::span<const double> point,
                          double* distance2) const;

  bool fitted() const noexcept { return !centroids_.empty(); }
  const Matrix& centroids() const noexcept { return centroids_; }
  std::size_t k() const noexcept { return config_.k; }

  // Within-cluster sum of squares of the training run (a.k.a. inertia).
  double inertia() const noexcept { return inertia_; }

  // Training-set labels from the final iteration.
  const std::vector<std::size_t>& labels() const noexcept { return labels_; }

  // Reconstruct a fitted model from persisted centroids (model_io).
  static KMeans from_centroids(Matrix centroids, KMeansConfig config = {});

 private:
  struct RunResult {
    Matrix centroids;
    std::vector<std::size_t> labels;
    double inertia = 0.0;
  };

  RunResult run_once(const Matrix& data, bp::util::Rng& rng) const;
  Matrix init_plus_plus(const Matrix& data, bp::util::Rng& rng) const;

  KMeansConfig config_;
  Matrix centroids_;
  std::vector<std::size_t> labels_;
  double inertia_ = 0.0;
};

// Convenience: WCSS (inertia) after fitting k-means with each k in
// [k_begin, k_end]; used by the elbow-method benches (Figures 3 & 4).
std::vector<double> wcss_curve(const Matrix& data, std::size_t k_begin,
                               std::size_t k_end, std::uint64_t seed = 42);

// The paper's Figure 4 statistic: relative WCSS improvement
//   rel[k] = (wcss[k-1] - wcss[k]) / wcss[k-1]
// evaluated over a wcss curve indexed from k_begin.
std::vector<double> relative_wcss_drops(const std::vector<double>& wcss);

// The paper's Figure 4 *reading*: the first pronounced late-stage local
// peak of the relative-WCSS curve — the smallest k >= min_k whose drop is
// a local maximum of at least `threshold`.  Falls back to the largest
// late-stage drop when no peak clears the threshold.  `wcss[i]` is the
// inertia at k = k_begin + i.
std::size_t elbow_k(const std::vector<double>& wcss, std::size_t k_begin,
                    std::size_t min_k = 9, double threshold = 0.30);

}  // namespace bp::ml
