// Retraining supervisor: the paper's §6.6 drift loop, made survivable.
//
// The paper assumes retraining always succeeds; at FinOrg volumes a
// retrain can crash, produce an untrainable dataset, or emit a model
// that fails validation.  The supervisor drives
//
//   drift check  ->  retrain  ->  validate  ->  hot-swap (publish)
//
// with per-cycle retry: failed attempts back off exponentially with
// deterministic jitter (seeded, so chaos runs replay exactly), and a
// circuit breaker opens after N consecutive failed *cycles* so a
// persistently broken training pipeline cannot hammer the data tier
// forever — it cools down while serving continues on the last-good
// model.  A model-staleness gauge (cycles since the last successful
// publish) is what an operator alarms on: staleness rising while the
// breaker is open is the "we are serving an old model" signal.
//
// The three stages are injected as callables so the supervisor is
// test-drivable without a real training pipeline, and so callers
// decide what "validate" means (e.g. score a holdout within budget).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>

#include "core/polygraph.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "serve/model_registry.h"

namespace bp::serve {

enum class CycleResult : std::uint8_t {
  kNoDrift,      // drift check says the frozen model still holds
  kPublished,    // retrained, validated and hot-swapped
  kFailed,       // every attempt failed; breaker may now be open
  kBreakerOpen,  // skipped: breaker cooling down, staleness grows
};

std::string_view cycle_result_name(CycleResult r) noexcept;

struct RetrainConfig {
  // Attempts per cycle before the cycle counts as failed.
  int max_attempts = 3;
  // Backoff between attempts: initial * multiplier^attempt, capped,
  // then scaled by a jitter factor in [0.5, 1.0) drawn from jitter_seed.
  std::chrono::milliseconds initial_backoff{100};
  double backoff_multiplier = 2.0;
  std::chrono::milliseconds max_backoff{5'000};
  std::uint64_t jitter_seed = 0x9d2c5680;
  // Consecutive failed cycles before the breaker opens, and how many
  // cycles it stays open before one probe cycle is allowed through.
  int breaker_threshold = 3;
  int breaker_cooldown_cycles = 2;

  // ---- observability (optional; null = that plane disabled) ----
  //
  // After every cycle the full SupervisorStatus is exported here:
  // counters bp_retrain_{cycles,published,failed_cycles,attempts}_total
  // and gauges bp_retrain_{staleness_cycles,breaker_open,
  // consecutive_failures,last_published_version,last_backoff_ms}.
  obs::MetricsRegistry* registry = nullptr;

  // Per-cycle spans under trace id (1 << 62) + cycle number (the high
  // bit block keeps supervisor traces disjoint from request ids):
  //   1 "retrain_cycle" root,  2 "drift_check",  3 "train" (all
  //   attempts incl. backoff),  4 "validate",  5 "publish".
  obs::TraceSink* trace = nullptr;
};

struct SupervisorStatus {
  std::uint64_t cycles = 0;
  std::uint64_t published = 0;      // successful hot-swaps
  std::uint64_t failed_cycles = 0;  // cycles that exhausted all attempts
  std::uint64_t attempts = 0;       // train attempts across all cycles
  int consecutive_failures = 0;
  bool breaker_open = false;
  // Model-staleness gauge: cycles since the last successful publish
  // (or since startup when nothing was ever published).
  std::uint64_t staleness_cycles = 0;
  std::uint64_t last_published_version = 0;
  std::chrono::milliseconds last_backoff{0};
};

class RetrainSupervisor {
 public:
  using DriftCheck = std::function<bool()>;  // true = retraining required
  using TrainFn = std::function<std::optional<core::Polygraph>()>;
  using ValidateFn = std::function<bool(const core::Polygraph&)>;
  using SleepFn = std::function<void(std::chrono::milliseconds)>;

  // `sleep` defaults to std::this_thread::sleep_for; tests inject a
  // recorder so backoff schedules are asserted without waiting.
  RetrainSupervisor(ModelRegistry& registry, RetrainConfig config,
                    DriftCheck drift_check, TrainFn train, ValidateFn validate,
                    SleepFn sleep = {});
  ~RetrainSupervisor();

  RetrainSupervisor(const RetrainSupervisor&) = delete;
  RetrainSupervisor& operator=(const RetrainSupervisor&) = delete;

  // One synchronous supervision cycle.  Thread-safe (serialized).
  CycleResult run_cycle();

  // Close the breaker and forget the failure streak (operator action
  // after fixing the pipeline).
  void reset_breaker();

  SupervisorStatus status() const;

  // Background mode: run_cycle() every `period` until stop().  The
  // destructor stops the loop.
  void start(std::chrono::milliseconds period);
  void stop();

 private:
  std::chrono::milliseconds backoff_before_attempt(int attempt);
  CycleResult run_cycle_locked(std::unique_lock<std::mutex>& lock);
  void export_status_locked(CycleResult result, std::uint64_t attempts_delta);

  ModelRegistry& registry_;
  const RetrainConfig config_;
  DriftCheck drift_check_;
  TrainFn train_;
  ValidateFn validate_;
  SleepFn sleep_;

  mutable std::mutex mutex_;  // guards status_, rng state, run_cycle
  SupervisorStatus status_;
  std::uint64_t jitter_state_;
  int breaker_cooldown_remaining_ = 0;

  std::mutex loop_mutex_;
  std::condition_variable loop_cv_;
  bool loop_stop_ = false;
  std::thread loop_;
};

}  // namespace bp::serve
