#include "obs/introspect/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace bp::obs::introspect {

std::string_view status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

bool parse_request_head(std::string_view head, HttpRequest* out) {
  const std::size_t line_end = head.find("\r\n");
  std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return false;
  const std::string_view version = line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") return false;
  out->method = std::string(line.substr(0, sp1));
  out->target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  if (out->method.empty() || out->target.empty() || out->target[0] != '/') {
    return false;
  }
  const std::size_t q = out->target.find('?');
  out->path = out->target.substr(0, q);
  out->query =
      q == std::string::npos ? std::string() : out->target.substr(q + 1);
  return true;
}

std::string serialize_response(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    std::string(status_reason(response.status)) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

std::uint64_t query_uint(std::string_view query, std::string_view key,
                         std::uint64_t fallback) noexcept {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      const std::string_view value = pair.substr(eq + 1);
      if (value.empty()) return fallback;
      std::uint64_t parsed = 0;
      for (char c : value) {
        if (c < '0' || c > '9') return fallback;
        parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
      }
      return parsed;
    }
    pos = amp + 1;
  }
  return fallback;
}

namespace {

struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

bool set_io_timeout(int fd, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0 &&
         ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) == 0;
}

}  // namespace

HttpResult http_get(const std::string& host, std::uint16_t port,
                    const std::string& target,
                    std::chrono::milliseconds timeout) {
  HttpResult result;
  Fd sock{::socket(AF_INET, SOCK_STREAM, 0)};
  if (sock.fd < 0) {
    result.error = std::string("socket: ") + std::strerror(errno);
    return result;
  }
  set_io_timeout(sock.fd, timeout);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    result.error = "inet_pton: invalid literal IPv4 address '" + host + "'";
    return result;
  }
  if (::connect(sock.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    result.error = std::string("connect: ") + std::strerror(errno);
    return result;
  }

  const std::string request = "GET " + target + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(sock.fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      result.error = std::string("send: ") + std::strerror(errno);
      return result;
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string raw;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(sock.fd, buf, sizeof(buf), 0);
    if (n < 0) {
      result.error = std::string("recv: ") + std::strerror(errno);
      return result;
    }
    if (n == 0) break;  // server closed: full response received
    raw.append(buf, static_cast<std::size_t>(n));
  }

  // "HTTP/1.1 <code> ..." status line, then headers, then body.
  if (raw.size() < 12 || raw.compare(0, 5, "HTTP/") != 0) {
    result.error = "malformed response";
    return result;
  }
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) {
    result.error = "malformed status line";
    return result;
  }
  result.status = 0;
  for (std::size_t i = sp + 1; i < sp + 4; ++i) {
    if (raw[i] < '0' || raw[i] > '9') {
      result.status = -1;
      result.error = "malformed status code";
      return result;
    }
    result.status = result.status * 10 + (raw[i] - '0');
  }
  const std::size_t body = raw.find("\r\n\r\n");
  result.body = body == std::string::npos ? std::string() : raw.substr(body + 4);
  return result;
}

}  // namespace bp::obs::introspect
