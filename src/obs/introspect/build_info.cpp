#include "obs/introspect/build_info.h"

#include <thread>

// The CMakeLists for this library injects BP_GIT_DESCRIBE,
// BP_BUILD_TYPE and BP_SANITIZE_NAME on this TU only; missing values
// (e.g. a source tarball with no .git) degrade to "unknown".
#ifndef BP_GIT_DESCRIBE
#define BP_GIT_DESCRIBE "unknown"
#endif
#ifndef BP_BUILD_TYPE
#define BP_BUILD_TYPE "unknown"
#endif
#ifndef BP_SANITIZE_NAME
#define BP_SANITIZE_NAME "none"
#endif

namespace bp::obs::introspect {

namespace {

// Stringified compiler identity, preferring the most specific macro
// (clang defines __GNUC__ too).
const char* compiler_id() noexcept {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

BuildInfo build_info() noexcept {
  BuildInfo info;
  info.git_describe = BP_GIT_DESCRIBE;
  info.compiler = compiler_id();
  info.build_type = BP_BUILD_TYPE;
  info.sanitizer = BP_SANITIZE_NAME;
  info.hardware_threads = std::thread::hardware_concurrency();
  return info;
}

std::string render_build_info() {
  const BuildInfo info = build_info();
  std::string out;
  out += "git: ";
  out += info.git_describe;
  out += "\ncompiler: ";
  out += info.compiler;
  out += "\nbuild_type: ";
  out += info.build_type;
  out += "\nsanitizer: ";
  out += info.sanitizer;
  out += "\nhardware_threads: " + std::to_string(info.hardware_threads) + "\n";
  return out;
}

}  // namespace bp::obs::introspect
