#include "ml/kmeans.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace bp::ml {

Matrix KMeans::init_plus_plus(const Matrix& data, bp::util::Rng& rng) const {
  const std::size_t n = data.rows();
  const std::size_t k = config_.k;
  Matrix centroids(k, data.cols());

  // First centroid: uniform.
  std::size_t first = static_cast<std::size_t>(rng.below(n));
  std::copy_n(data.row(first).data(), data.cols(), centroids.row(0).data());

  std::vector<double> min_d2(n, std::numeric_limits<double>::max());
  for (std::size_t c = 1; c < k; ++c) {
    // Update distances to the nearest chosen centroid.
    const auto prev = centroids.row(c - 1);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d2 = squared_distance(data.row(i), prev);
      if (d2 < min_d2[i]) min_d2[i] = d2;
      total += min_d2[i];
    }
    std::size_t chosen = 0;
    if (total <= 0.0) {
      chosen = static_cast<std::size_t>(rng.below(n));
    } else {
      double target = rng.uniform() * total;
      for (std::size_t i = 0; i < n; ++i) {
        if (target < min_d2[i]) {
          chosen = i;
          break;
        }
        target -= min_d2[i];
        chosen = i;  // numeric slop: fall through to the last point
      }
    }
    std::copy_n(data.row(chosen).data(), data.cols(),
                centroids.row(c).data());
  }
  return centroids;
}

KMeans::RunResult KMeans::run_once(const Matrix& data,
                                   bp::util::Rng& rng) const {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  const std::size_t k = config_.k;

  RunResult result;
  result.centroids = init_plus_plus(data, rng);
  result.labels.assign(n, 0);

  std::vector<double> sums(k * d, 0.0);
  std::vector<std::size_t> counts(k, 0);

  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    // Assignment step.
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto point = data.row(i);
      double best = std::numeric_limits<double>::max();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d2 = squared_distance(point, result.centroids.row(c));
        if (d2 < best) {
          best = d2;
          best_c = c;
        }
      }
      result.labels[i] = best_c;
      inertia += best;
    }
    result.inertia = inertia;

    // Update step.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto point = data.row(i);
      const std::size_t c = result.labels[i];
      ++counts[c];
      double* s = &sums[c * d];
      for (std::size_t j = 0; j < d; ++j) s[j] += point[j];
    }

    double shift = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      auto centroid = result.centroids.row(c);
      if (counts[c] == 0) {
        // Empty cluster: re-seed from the point farthest from its current
        // centroid (standard repair; keeps k clusters alive).
        double worst = -1.0;
        std::size_t worst_i = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d2 = squared_distance(
              data.row(i), result.centroids.row(result.labels[i]));
          if (d2 > worst) {
            worst = d2;
            worst_i = i;
          }
        }
        const auto src = data.row(worst_i);
        shift += squared_distance(centroid, src);
        std::copy_n(src.data(), d, centroid.data());
        continue;
      }
      const double inv = 1.0 / static_cast<double>(counts[c]);
      double* s = &sums[c * d];
      double cluster_shift = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        const double updated = s[j] * inv;
        const double delta = updated - centroid[j];
        cluster_shift += delta * delta;
        centroid[j] = updated;
      }
      shift += cluster_shift;
    }

    if (shift <= config_.tolerance * (1.0 + result.inertia)) break;
  }

  // Final assignment with the converged centroids so labels and inertia
  // are consistent with what predict() would report.
  double inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto point = data.row(i);
    double best = std::numeric_limits<double>::max();
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < k; ++c) {
      const double d2 = squared_distance(point, result.centroids.row(c));
      if (d2 < best) {
        best = d2;
        best_c = c;
      }
    }
    result.labels[i] = best_c;
    inertia += best;
  }
  result.inertia = inertia;
  return result;
}

void KMeans::fit(const Matrix& data) {
  assert(data.rows() >= config_.k && config_.k > 0);
  bp::util::Rng rng(config_.seed);

  RunResult best;
  best.inertia = std::numeric_limits<double>::max();
  const int restarts = std::max(config_.n_init, 1);
  for (int r = 0; r < restarts; ++r) {
    bp::util::Rng run_rng = rng.fork(static_cast<std::uint64_t>(r));
    RunResult candidate = run_once(data, run_rng);
    if (candidate.inertia < best.inertia) best = std::move(candidate);
  }

  centroids_ = std::move(best.centroids);
  labels_ = std::move(best.labels);
  inertia_ = best.inertia;
}

KMeans KMeans::from_centroids(Matrix centroids, KMeansConfig config) {
  config.k = centroids.rows();
  KMeans model(config);
  model.centroids_ = std::move(centroids);
  return model;
}

std::size_t KMeans::predict_one(std::span<const double> point) const {
  assert(fitted() && point.size() == centroids_.cols());
  double best = std::numeric_limits<double>::max();
  std::size_t best_c = 0;
  for (std::size_t c = 0; c < centroids_.rows(); ++c) {
    const double d2 = squared_distance(point, centroids_.row(c));
    if (d2 < best) {
      best = d2;
      best_c = c;
    }
  }
  return best_c;
}

std::vector<std::size_t> KMeans::predict(const Matrix& data) const {
  std::vector<std::size_t> labels(data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i) {
    labels[i] = predict_one(data.row(i));
  }
  return labels;
}

std::vector<double> wcss_curve(const Matrix& data, std::size_t k_begin,
                               std::size_t k_end, std::uint64_t seed) {
  std::vector<double> out;
  for (std::size_t k = k_begin; k <= k_end; ++k) {
    KMeansConfig config;
    config.k = k;
    config.seed = seed + k;
    KMeans model(config);
    model.fit(data);
    out.push_back(model.inertia());
  }
  return out;
}

std::vector<double> relative_wcss_drops(const std::vector<double>& wcss) {
  std::vector<double> out;
  for (std::size_t i = 1; i < wcss.size(); ++i) {
    out.push_back(wcss[i - 1] > 0.0
                      ? (wcss[i - 1] - wcss[i]) / wcss[i - 1]
                      : 0.0);
  }
  return out;
}

std::size_t elbow_k(const std::vector<double>& wcss, std::size_t k_begin,
                    std::size_t min_k, double threshold) {
  const std::vector<double> drops = relative_wcss_drops(wcss);
  auto drop_at = [&](std::size_t i) {
    return i < drops.size() ? drops[i] : 0.0;
  };

  std::size_t fallback = min_k;
  double fallback_drop = -1.0;
  for (std::size_t i = 0; i < drops.size(); ++i) {
    const std::size_t k = k_begin + 1 + i;  // drops[i] = improvement at k
    if (k < min_k) continue;
    const bool local_peak =
        (i == 0 || drops[i] > drop_at(i - 1)) && drops[i] > drop_at(i + 1);
    if (local_peak && drops[i] >= threshold) return k;
    if (drops[i] > fallback_drop) {
      fallback_drop = drops[i];
      fallback = k;
    }
  }
  return fallback;
}

}  // namespace bp::ml
