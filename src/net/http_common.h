// Shared HTTP/1.1 plumbing for every plane that speaks HTTP in this
// process: the GET-only introspection server (src/obs/introspect) and
// the POST /score ingress (src/net/score_server).
//
// Promoted out of obs/introspect so the two servers do not duplicate
// request parsing, response framing, or the accept/handler-pool loop.
// This is deliberately not a web framework: two verbs, bounded inputs
// (head size, body size, connection queue, per-connection I/O
// timeouts), zero dependencies beyond POSIX sockets.  Parsing accepts
// what curl, Prometheus, the bundled clients and the load generator
// send, and rejects the rest with a plain status code.
//
// Three pieces:
//
//   * vocabulary — HttpRequest/HttpResponse, parse_request_head (now
//     header-aware: Content-Length and Connection), serialize_response
//     (keep-alive aware), status_reason, query_uint;
//   * HttpListener — the socket/accept/read-request loop both servers
//     share: one acceptor thread, a handler pool draining a bounded
//     queue of accepted connections, shed-at-accept when that queue is
//     full, optional keep-alive with pipelining (a request already
//     buffered behind the current one is served without another recv),
//     a header-read deadline distinct from the body deadline (the
//     slow-loris cutoff) and keep-alive reaper caps on requests-per-
//     connection and connection lifetime (DESIGN.md §15);
//   * HttpClient — the blocking test/bench client, now with keep-alive
//     connection reuse and POST.  The split send_request/read_response
//     halves let the open-loop load generator pipeline requests from a
//     sender thread while a reader thread drains responses in order.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace bp::net {

struct HttpRequest {
  std::string method;  // "GET", "POST"
  std::string target;  // raw request target, e.g. "/auditz?n=50"
  std::string path;    // target before '?', e.g. "/auditz"
  std::string query;   // target after '?', e.g. "n=50" (no '?')
  // Body bytes (POST).  When the listener builds the request this is a
  // view into the connection's receive buffer — valid only for the
  // duration of the handler call.
  std::string_view body;
  std::size_t content_length = 0;
  // What the client asked for (Connection header, or the HTTP-version
  // default: 1.1 keeps alive, 1.0 closes).  The listener combines this
  // with its own policy to decide whether the connection stays open.
  bool keep_alive = true;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  // Set by the listener before serialization; handlers need not touch
  // it.  Default false so hand-serialized responses close, matching
  // the introspection plane's original one-request-per-connection
  // contract.
  bool keep_alive = false;
};

std::string_view status_reason(int status) noexcept;

// Parse the head of an HTTP/1.1 request ("GET /path HTTP/1.1\r\n" +
// header lines).  Returns false on a malformed request line or a
// non-numeric Content-Length.  Recognized headers: Content-Length and
// Connection (case-insensitive); everything else is ignored.
bool parse_request_head(std::string_view head, HttpRequest* out);

// Serialize status line + minimal headers + body.  The Connection
// header follows `response.keep_alive`.
std::string serialize_response(const HttpResponse& response);

// Value of `key` in a query string ("n=50&x=1"), or `fallback` when
// absent/unparseable.  Only non-negative integers are supported.
std::uint64_t query_uint(std::string_view query, std::string_view key,
                         std::uint64_t fallback) noexcept;

// Like query_uint, but distinguishes the three cases an endpoint that
// must 400 on malformed input needs to tell apart: key absent (kAbsent,
// *out untouched), present and a valid non-negative integer (kOk, *out
// set), present but empty/non-numeric/overflowing (kMalformed).
enum class QueryParam : std::uint8_t { kAbsent, kOk, kMalformed };
QueryParam query_uint_checked(std::string_view query, std::string_view key,
                              std::uint64_t* out) noexcept;

// ---------------------------------------------------------------- listener

struct ListenerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; read the choice via port()
  std::size_t handler_threads = 2;
  std::size_t max_pending = 64;  // accepted connections awaiting a handler
  std::chrono::milliseconds io_timeout{2000};  // per-connection recv/send
  // Slow-loris cutoff, distinct from io_timeout: once the first byte
  // of a request head arrives, the whole head must arrive within this
  // window or the connection is answered 408 and closed (counted in
  // slowloris()).  io_timeout alone cannot bound this — a peer
  // trickling one header byte per io_timeout holds a handler forever.
  // The wait for a request to *begin* (an idle keep-alive connection)
  // is governed by io_timeout, not this.  0 disables the cutoff.
  std::chrono::milliseconds header_timeout{1000};
  // Keep-alive reaper caps (0 = uncapped).  A connection that has
  // served this many requests, or lived this long, is closed after its
  // current response (Connection: close, so the client knows) and
  // counted in reaped() — bounding how long any one peer can pin a
  // handler thread and letting a rebalancing ingress shed old
  // connections gracefully.
  std::size_t max_requests_per_connection = 0;
  std::chrono::milliseconds max_connection_lifetime{0};
  std::size_t max_head_bytes = 8192;
  std::size_t max_body_bytes = 1 << 20;
  // Serve multiple requests per connection (HTTP keep-alive, honoring
  // the client's Connection header), including requests the client
  // pipelined.  Off = one request per connection, the introspection
  // plane's historical contract.  Regardless of this flag, an error
  // response (status >= 400) always closes the connection: after a
  // framing error nothing downstream in the buffer can be trusted.
  bool keep_alive = false;
};

// The shared accept/read/dispatch loop.  The handler runs on the pool
// threads; it must be thread-safe.  It is invoked for every
// well-framed request regardless of verb — verb policy (the
// introspection plane's 405 for non-GET, the ingress's 405 for
// non-POST) belongs to the handler.
class HttpListener {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  // Binds and starts serving immediately.  On bind/listen failure the
  // listener constructs non-running with error() set.
  HttpListener(ListenerConfig config, Handler handler);
  ~HttpListener();

  HttpListener(const HttpListener&) = delete;
  HttpListener& operator=(const HttpListener&) = delete;

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  std::uint16_t port() const noexcept { return port_; }
  const std::string& bind_address() const noexcept {
    return config_.bind_address;
  }
  std::string error() const;

  // Requests answered (including 400s for malformed frames).
  std::uint64_t requests() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }
  // Connections dropped because the pending queue was full.
  std::uint64_t overloaded() const noexcept {
    return overloaded_.load(std::memory_order_relaxed);
  }
  // Connections closed by policy: idle keep-alive recv timeout, the
  // max-requests-per-connection cap, or the lifetime cap.
  std::uint64_t reaped() const noexcept {
    return reaped_.load(std::memory_order_relaxed);
  }
  // Connections cut off by the header-read deadline (408).
  std::uint64_t slowloris() const noexcept {
    return slowloris_.load(std::memory_order_relaxed);
  }

  // Two-phase stop, so an owner can drain downstream work between the
  // phases (the score server stops intake, drains its shards — which
  // unblocks handler threads waiting on scoring responses — and only
  // then joins the pool):
  //   begin_stop()  stop accepting; in-flight connections finish their
  //                 current request and close instead of keeping alive;
  //   stop()        begin_stop + join all threads + close what was
  //                 accepted but never picked up.
  // Both are idempotent; the destructor calls stop().
  void begin_stop();
  void stop();

 private:
  void acceptor_loop();
  void handler_loop(std::size_t lane);
  void serve_connection(int fd);

  ListenerConfig config_;
  Handler handler_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> overloaded_{0};
  std::atomic<std::uint64_t> reaped_{0};
  std::atomic<std::uint64_t> slowloris_{0};

  mutable std::mutex error_mutex_;
  std::string error_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  // accepted fds awaiting a handler

  std::mutex stop_mutex_;  // serializes stop() callers
  std::thread acceptor_;
  std::vector<std::thread> handlers_;
};

// ----------------------------------------------------------------- client

struct HttpResult {
  int status = -1;  // -1 = transport error, see `error`
  std::string body;
  std::string error;
};

// Blocking HTTP/1.1 client against literal IPv4 hosts, with keep-alive
// connection reuse: the connection opened by the first request is
// reused until the server closes it (Connection: close in a response,
// or EOF), after which the next request transparently reconnects.
//
// Thread model: get()/post() are single-threaded calls.  For pipelined
// use, exactly one thread may call send_request() while exactly one
// other thread calls read_response() — sends and receives touch
// disjoint state on one socket.  connect() must happen-before either.
// abort_connection() is the one cross-thread entry point: any thread
// may call it to wake a blocked exchange (the hedging client cancels
// its losing request this way).
class HttpClient {
 public:
  HttpClient(std::string host, std::uint16_t port,
             std::chrono::milliseconds timeout = std::chrono::milliseconds(2000));
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  // Explicit connect (optional: get/post connect lazily).  Returns
  // false with error() set on failure.
  bool connect();
  bool connected() const noexcept { return fd_ >= 0; }
  void close();
  // Shut the live connection down (both directions) without closing
  // the descriptor, forcing any blocked send/recv on it to return.
  // Safe to call from another thread while the owning thread is inside
  // an exchange; the owner then observes a transport error and closes.
  // The connection is unusable afterwards until the next connect().
  void abort_connection();
  std::string error() const { return error_; }

  // One request-response exchange, reusing the live connection when
  // there is one.  `close_connection` sends Connection: close and
  // drops the socket afterwards (the one-shot wrappers use it).
  HttpResult get(const std::string& target, bool close_connection = false);
  HttpResult post(const std::string& target, std::string_view body,
                  const std::string& content_type = "application/x-bpwire",
                  bool close_connection = false);

  // Pipelined halves.  send_request writes one full request and
  // returns without waiting; read_response blocks for the next
  // response in order.  No transparent reconnect in this mode — a
  // transport error surfaces to the caller, because resending on a
  // fresh connection would reorder the pipeline.
  bool send_request(std::string_view method, const std::string& target,
                    std::string_view body, const std::string& content_type);
  HttpResult read_response();

  // Times the connection was (re-)established — a keep-alive test
  // asserting reuse expects this to stay at 1.
  std::uint64_t connects() const noexcept { return connects_; }

 private:
  HttpResult exchange(std::string_view method, const std::string& target,
                      std::string_view body, const std::string& content_type,
                      bool close_connection);
  bool send_all(std::string_view data);

  std::string host_;
  std::uint16_t port_;
  std::chrono::milliseconds timeout_;
  // fd lifecycle (connect/close/abort_connection) is serialized by
  // fd_mutex_ so a cross-thread abort can never race a close into a
  // reused descriptor; plain reads stay on the owning thread.
  mutable std::mutex fd_mutex_;
  int fd_ = -1;
  std::string rx_;  // bytes received beyond the last parsed response
  std::string error_;
  std::uint64_t connects_ = 0;
};

// One request, one connection — the original test-client shape, kept
// for the many existing call sites.
HttpResult http_get(const std::string& host, std::uint16_t port,
                    const std::string& target,
                    std::chrono::milliseconds timeout =
                        std::chrono::milliseconds(2000));
HttpResult http_post(const std::string& host, std::uint16_t port,
                     const std::string& target, std::string_view body,
                     const std::string& content_type = "application/x-bpwire",
                     std::chrono::milliseconds timeout =
                         std::chrono::milliseconds(2000));

}  // namespace bp::net
