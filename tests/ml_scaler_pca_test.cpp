// Tests for StandardScaler and PCA.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/pca.h"
#include "ml/scaler.h"
#include "util/rng.h"

namespace bp::ml {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  bp::util::Rng rng(seed);
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = rng.normal(static_cast<double>(c) * 3.0,
                           1.0 + static_cast<double>(c));
    }
  }
  return m;
}

TEST(Scaler, ZeroMeanUnitVariance) {
  const Matrix data = random_matrix(500, 4, 1);
  StandardScaler scaler;
  const Matrix scaled = scaler.fit_transform(data);
  const auto means = scaled.column_means();
  const auto stds = scaled.column_stddevs(means);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(means[c], 0.0, 1e-9);
    EXPECT_NEAR(stds[c], 1.0, 1e-9);
  }
}

TEST(Scaler, ConstantColumnCenteredOnly) {
  const Matrix data = Matrix::from_rows({{5, 1}, {5, 2}, {5, 3}});
  StandardScaler scaler;
  const Matrix scaled = scaler.fit_transform(data);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(scaled(r, 0), 0.0);
  }
}

TEST(Scaler, PassThroughColumns) {
  const Matrix data = Matrix::from_rows({{100, 0}, {200, 1}, {300, 1}});
  StandardScaler scaler;
  scaler.fit(data, {true, false});
  const Matrix scaled = scaler.transform(data);
  // Column 1 (the time-based bit) is untouched.
  EXPECT_DOUBLE_EQ(scaled(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(scaled(2, 1), 1.0);
  // Column 0 is standardized.
  EXPECT_NEAR(scaled(0, 0) + scaled(1, 0) + scaled(2, 0), 0.0, 1e-12);
}

TEST(Scaler, InverseTransformRoundTrips) {
  const Matrix data = random_matrix(100, 3, 2);
  StandardScaler scaler;
  const Matrix scaled = scaler.fit_transform(data);
  const Matrix restored = scaler.inverse_transform(scaled);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < data.cols(); ++c) {
      EXPECT_NEAR(restored(r, c), data(r, c), 1e-9);
    }
  }
}

TEST(Scaler, TransformUsesTrainingStatistics) {
  const Matrix train = Matrix::from_rows({{0.0}, {10.0}});
  StandardScaler scaler;
  scaler.fit(train);
  const Matrix other = Matrix::from_rows({{5.0}});
  EXPECT_DOUBLE_EQ(scaler.transform(other)(0, 0), 0.0);  // (5-5)/5
}

TEST(Scaler, FromParamsReconstructs) {
  StandardScaler scaler = StandardScaler::from_params({2.0}, {4.0});
  const Matrix data = Matrix::from_rows({{10.0}});
  EXPECT_DOUBLE_EQ(scaler.transform(data)(0, 0), 2.0);
}

// ------------------------- eigen / PCA -------------------------

TEST(SymmetricEigen, DiagonalMatrix) {
  const Matrix a = Matrix::from_rows({{3, 0}, {0, 1}});
  std::vector<double> values;
  Matrix vectors;
  symmetric_eigen(a, values, vectors);
  EXPECT_NEAR(values[0], 3.0, 1e-12);
  EXPECT_NEAR(values[1], 1.0, 1e-12);
}

TEST(SymmetricEigen, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  const Matrix a = Matrix::from_rows({{2, 1}, {1, 2}});
  std::vector<double> values;
  Matrix vectors;
  symmetric_eigen(a, values, vectors);
  EXPECT_NEAR(values[0], 3.0, 1e-10);
  EXPECT_NEAR(values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-8);
}

TEST(SymmetricEigen, VectorsAreOrthonormal) {
  const Matrix a = Matrix::from_rows(
      {{4, 1, 0.5}, {1, 3, 0.2}, {0.5, 0.2, 2}});
  std::vector<double> values;
  Matrix v;
  symmetric_eigen(a, values, v);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      double dot = 0.0;
      for (std::size_t k = 0; k < 3; ++k) dot += v(k, i) * v(k, j);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Pca, EigenvaluesDescending) {
  const Matrix data = random_matrix(300, 5, 3);
  Pca pca;
  pca.fit(data, 5);
  const auto& ev = pca.eigenvalues();
  for (std::size_t i = 1; i < ev.size(); ++i) {
    EXPECT_GE(ev[i - 1], ev[i] - 1e-12);
  }
}

TEST(Pca, CumulativeVarianceMonotoneToOne) {
  const Matrix data = random_matrix(300, 6, 4);
  Pca pca;
  pca.fit(data, 6);
  const auto cumulative = pca.cumulative_variance_ratio();
  EXPECT_NEAR(cumulative.back(), 1.0, 1e-9);
  for (std::size_t i = 1; i < cumulative.size(); ++i) {
    EXPECT_GE(cumulative[i], cumulative[i - 1] - 1e-12);
  }
}

TEST(Pca, FullRankRoundTrips) {
  const Matrix data = random_matrix(120, 4, 5);
  Pca pca;
  const Matrix projected = pca.fit_transform(data, 4);
  const Matrix restored = pca.inverse_transform(projected);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < data.cols(); ++c) {
      EXPECT_NEAR(restored(r, c), data(r, c), 1e-8);
    }
  }
}

TEST(Pca, CapturesDominantDirection) {
  // Points along the diagonal y = x with tiny orthogonal noise: one
  // component should capture nearly everything.
  bp::util::Rng rng(6);
  Matrix data(400, 2);
  for (std::size_t i = 0; i < 400; ++i) {
    const double t = rng.normal(0.0, 5.0);
    const double noise = rng.normal(0.0, 0.01);
    data(i, 0) = t + noise;
    data(i, 1) = t - noise;
  }
  Pca pca;
  pca.fit(data, 2);
  const auto ratio = pca.explained_variance_ratio();
  EXPECT_GT(ratio[0], 0.999);
}

TEST(Pca, ProjectionReducesDimensions) {
  const Matrix data = random_matrix(50, 6, 7);
  Pca pca;
  const Matrix projected = pca.fit_transform(data, 2);
  EXPECT_EQ(projected.cols(), 2u);
  EXPECT_EQ(projected.rows(), 50u);
}

TEST(Pca, ComponentCountClamped) {
  const Matrix data = random_matrix(50, 3, 8);
  Pca pca;
  pca.fit(data, 10);
  EXPECT_EQ(pca.n_components(), 3u);
}

TEST(Pca, FromParamsMatchesOriginalTransform) {
  const Matrix data = random_matrix(80, 4, 9);
  Pca pca;
  pca.fit(data, 3);
  Pca rebuilt = Pca::from_params(pca.mean(), pca.eigenvalues(),
                                 pca.components());
  const Matrix a = pca.transform(data);
  const Matrix b = rebuilt.transform(data);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_DOUBLE_EQ(a(r, c), b(r, c));
    }
  }
}

// Property: total variance is preserved by the eigen decomposition
// (trace of covariance == sum of eigenvalues) across random datasets.
class PcaTraceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PcaTraceProperty, TraceEqualsEigenvalueSum) {
  const Matrix data = random_matrix(150, 5, GetParam());
  Pca pca;
  pca.fit(data, 5);

  const auto means = data.column_means();
  double trace = 0.0;
  for (std::size_t c = 0; c < data.cols(); ++c) {
    double var = 0.0;
    for (std::size_t r = 0; r < data.rows(); ++r) {
      const double d = data(r, c) - means[c];
      var += d * d;
    }
    trace += var / static_cast<double>(data.rows() - 1);
  }
  double sum = 0.0;
  for (double ev : pca.eigenvalues()) sum += ev;
  EXPECT_NEAR(sum, trace, 1e-6 * trace);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcaTraceProperty,
                         ::testing::Range<std::uint64_t>(10, 18));

}  // namespace
}  // namespace bp::ml
