// Declarative SLO evaluation with hysteresis: the alerting brain the
// paper's deployment story implies but never specifies.
//
// A web-scale fraud scorer is judged on *windowed* behaviour — error
// budget burn over the last five minutes vs the last hour, not
// lifetime averages.  The engine evaluates a fixed set of rules
// against a TimeSeriesWindow on every tick and maintains one alert
// state per rule:
//
//   kOk  ──fire──▶  kWarn  ──fire──▶  kPage
//    ▲                │                 │
//    └── clear_ticks ─┴─── consecutive quiet ticks ──┘
//
// Escalation is immediate (a page-level breach pages on the tick it
// appears, even from kOk); de-escalation is damped: the rule must
// evaluate below its firing thresholds for `clear_ticks` consecutive
// ticks before the state steps down (directly to the currently
// indicated level).  That asymmetry is the hysteresis — a flapping
// signal pages once and stays paged, instead of paging once per flap.
//
// Three rule kinds:
//   * kBurnRate — classic multi-window burn-rate alerting on a
//     bad/total counter pair: burn = (bad/total)/budget over a window;
//     fires only when BOTH the short and the long lookback burn exceed
//     the level's threshold (short confirms it is happening *now*,
//     long confirms it is not a blip);
//   * kErrorRate — plain bad/total fraction over the short lookback
//     vs warn/page thresholds;
//   * kCeiling — latest level of a gauge-like series vs warn/page
//     ceilings (model staleness, publish age, queue depth).
//
// Determinism contract (pinned by ObsSlo tests): evaluate() is a pure
// function of (tick timestamps, window contents) — no wall clock, no
// randomness — so a scripted trace produces a byte-identical
// transition log (`render_transitions()`) across runs and regardless
// of how many threads fed the underlying counters.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/slo/time_series.h"

namespace bp::obs::slo {

enum class AlertState : std::uint8_t { kOk = 0, kWarn = 1, kPage = 2 };

std::string_view alert_state_name(AlertState state) noexcept;

struct SloRule {
  enum class Kind : std::uint8_t { kBurnRate, kErrorRate, kCeiling };

  std::string name;
  Kind kind = Kind::kErrorRate;

  // kBurnRate / kErrorRate: bad-event and total-event counter series.
  // kCeiling: `numerator` is the level series; `denominator` unused.
  std::string numerator;
  std::string denominator;

  // kBurnRate: the error budget — allowed bad/total fraction.  A burn
  // rate of 1.0 consumes exactly the budget; 14.4 is the classic
  // "2% of a 30-day budget in one hour" page threshold.
  double budget = 0.001;
  std::int64_t short_window_ms = 5 * 60 * 1000;
  std::int64_t long_window_ms = 60 * 60 * 1000;
  double warn_burn = 6.0;
  double page_burn = 14.4;

  // kErrorRate: bad/total fraction thresholds over short_window_ms.
  // kCeiling: absolute level thresholds on latest(numerator).
  double warn_threshold = 0.0;
  double page_threshold = 0.0;

  // Consecutive quiet evaluations before the state steps down.
  int clear_ticks = 3;

  // When set, this rule's kPage state makes HealthModel report
  // not-ready (pull the instance from rotation); purely informational
  // otherwise.  Readiness-gating belongs on rules whose breach a
  // restart/rotation can actually help (stuck serving path), not on
  // fleet-wide conditions like model staleness.
  bool gate_readiness = false;
};

struct AlertTransition {
  std::int64_t at_ms = 0;
  std::string rule;
  AlertState from = AlertState::kOk;
  AlertState to = AlertState::kOk;
};

struct RuleStatus {
  std::string name;
  AlertState state = AlertState::kOk;
  AlertState indicated = AlertState::kOk;  // this tick's raw evaluation
  double short_value = 0.0;  // burn rate / error fraction / level
  double long_value = 0.0;   // kBurnRate only
  int quiet_ticks = 0;       // consecutive ticks below the held state
  bool gate_readiness = false;
};

class SloEngine {
 public:
  explicit SloEngine(std::vector<SloRule> rules);

  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  // Evaluate every rule against `window` at tick `now_ms`, apply
  // hysteresis, append transitions.  Returns the worst held state.
  AlertState evaluate(const TimeSeriesWindow& window, std::int64_t now_ms);

  // Worst held state across rules; with `gating_only`, across
  // readiness-gating rules only.
  AlertState worst_state(bool gating_only = false) const;

  std::vector<RuleStatus> statuses() const;
  std::vector<AlertTransition> transitions() const;
  std::uint64_t evaluations() const;

  // One line per transition, oldest first:
  //   t=<ms> rule=<name> <from>-><to>
  // The byte-comparison surface of the determinism tests.
  std::string render_transitions() const;

  // Human-readable rollup (one line per rule) for /statusz.
  std::string render_statuses() const;

 private:
  struct RuleState {
    SloRule rule;
    AlertState held = AlertState::kOk;
    AlertState indicated = AlertState::kOk;
    double short_value = 0.0;
    double long_value = 0.0;
    int quiet_ticks = 0;
  };

  // The raw (pre-hysteresis) level this tick indicates.
  AlertState indicate(const TimeSeriesWindow& window, RuleState& rs) const;

  mutable std::mutex mutex_;
  std::vector<RuleState> rules_;
  std::vector<AlertTransition> transitions_;
  std::uint64_t evaluations_ = 0;
};

}  // namespace bp::obs::slo
