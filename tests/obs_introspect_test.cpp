// Tests for the live introspection server: every endpoint fetched over
// a real TCP socket (ephemeral port), readiness flipping around model
// publishes, HTTP plumbing edge cases, and the concurrent
// scrape-under-mutation satellite (render /metrics and /tracez from N
// client threads while writers hammer the instruments — must stay
// parseable and TSan-clean).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/polygraph.h"
#include "obs/audit.h"
#include "obs/introspect/http.h"
#include "obs/introspect/server.h"
#include "obs/metrics_registry.h"
#include "obs/slo/health.h"
#include "obs/slo/slo_engine.h"
#include "obs/slo/time_series.h"
#include "obs/trace.h"
#include "serve/model_registry.h"

namespace bp::obs::introspect {
namespace {

// Send a raw payload and return everything the server answers —
// exercises the malformed-request paths http_get cannot produce.
std::string raw_request(std::uint16_t port, const std::string& payload) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  timeval tv{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::string out;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0 &&
      ::send(fd, payload.data(), payload.size(), 0) ==
          static_cast<ssize_t>(payload.size())) {
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
      out.append(buf, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return out;
}

// The cheap hand-assembled model the serve tests use: enough to make
// ModelRegistry::publish accept it.
core::Polygraph tiny_model() {
  core::PolygraphConfig config;
  config.feature_indices = {0, 1};
  config.pca_components = 2;
  config.k = 2;
  ml::Matrix centroids(2, 2);
  centroids(1, 0) = 10.0;
  centroids(1, 1) = 10.0;
  ml::KMeansConfig kconfig;
  kconfig.k = 2;
  core::ClusterTable table;
  table.assign({ua::Vendor::kChrome, 100, ua::Os::kWindows10}, 0);
  return core::Polygraph::from_parts(
      config, ml::StandardScaler::from_params({0.0, 0.0}, {1.0, 1.0}),
      ml::Pca::from_params({0.0, 0.0}, {1.0, 1.0}, ml::Matrix::identity(2)),
      ml::KMeans::from_centroids(std::move(centroids), kconfig),
      std::move(table));
}

AuditRecord audit_record(std::uint64_t session_id, bool flagged) {
  AuditRecord record;
  record.session_id = session_id;
  record.model_version = 1;
  record.claimed = {ua::Vendor::kChrome, 100, ua::Os::kWindows10};
  record.risk_factor = flagged ? 4 : 0;
  if (flagged) record.tags = AuditRecord::kFlagged;
  return record;
}

// ------------------------------ HTTP plumbing ------------------------------

TEST(ObsIntrospectHttp, ParsesRequestHead) {
  HttpRequest request;
  ASSERT_TRUE(parse_request_head(
      "GET /auditz?n=50 HTTP/1.1\r\nHost: x\r\n\r\n", &request));
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/auditz?n=50");
  EXPECT_EQ(request.path, "/auditz");
  EXPECT_EQ(request.query, "n=50");

  ASSERT_TRUE(parse_request_head("GET / HTTP/1.0\r\n\r\n", &request));
  EXPECT_EQ(request.path, "/");
  EXPECT_TRUE(request.query.empty());

  EXPECT_FALSE(parse_request_head("garbage", &request));
  EXPECT_FALSE(parse_request_head("GET /x SMTP/1.1\r\n", &request));
  EXPECT_FALSE(parse_request_head("GET no-leading-slash HTTP/1.1\r\n",
                                  &request));
}

TEST(ObsIntrospectHttp, QueryUint) {
  EXPECT_EQ(query_uint("n=50", "n", 7), 50u);
  EXPECT_EQ(query_uint("a=1&n=50&b=2", "n", 7), 50u);
  EXPECT_EQ(query_uint("a=1", "n", 7), 7u);
  EXPECT_EQ(query_uint("", "n", 7), 7u);
  EXPECT_EQ(query_uint("n=abc", "n", 7), 7u);
  EXPECT_EQ(query_uint("n=", "n", 7), 7u);
}

TEST(ObsIntrospectHttp, QueryUintChecked) {
  std::uint64_t value = 99;
  EXPECT_EQ(net::query_uint_checked("n=50", "n", &value),
            net::QueryParam::kOk);
  EXPECT_EQ(value, 50u);
  value = 99;
  EXPECT_EQ(net::query_uint_checked("a=1", "n", &value),
            net::QueryParam::kAbsent);
  EXPECT_EQ(value, 99u);  // untouched on absent
  EXPECT_EQ(net::query_uint_checked("n=abc", "n", &value),
            net::QueryParam::kMalformed);
  EXPECT_EQ(net::query_uint_checked("n=", "n", &value),
            net::QueryParam::kMalformed);
  EXPECT_EQ(net::query_uint_checked("n=99999999999999999999", "n", &value),
            net::QueryParam::kMalformed);  // overflow is a typo, not 0
  EXPECT_EQ(value, 99u);
}

// ------------------------------- endpoints -------------------------------

TEST(ObsIntrospect, ServesAllEndpointsOverRealTcp) {
  MetricsRegistry metrics;
  metrics.counter("bp_test_scored_total", "sessions scored").add(42);
  metrics.gauge("bp_test_queue_depth", "queued requests").set(3);

  TraceSink trace;
  Span(&trace, 1, 1, 0, "request").finish();
  Span(&trace, 2, 1, 0, "request").finish();
  Span(&trace, 2, 2, 1, "queue_wait").finish();

  AuditTrail audit;
  audit.record(audit_record(7, true));

  serve::ModelRegistry models;
  ASSERT_EQ(models.publish(tiny_model()), 1u);

  slo::SloEngine slo({});
  slo::HealthModel health(
      [&] {
        slo::HealthSignals signals;
        signals.model_version = models.version();
        signals.workers = 4;
        return signals;
      },
      &slo);

  Sources sources;
  sources.metrics = &metrics;
  sources.trace = &trace;
  sources.audit = &audit;
  sources.health = &health;
  sources.slo = &slo;
  sources.statusz_extra = [] { return std::string("example_line: 1\n"); };

  IntrospectionServer server(sources);
  ASSERT_TRUE(server.running()) << server.error();
  ASSERT_NE(server.port(), 0);

  const auto get = [&](const std::string& target) {
    return http_get("127.0.0.1", server.port(), target);
  };

  const HttpResult metrics_result = get("/metrics");
  ASSERT_EQ(metrics_result.status, 200) << metrics_result.error;
  EXPECT_NE(metrics_result.body.find("# TYPE bp_test_scored_total counter"),
            std::string::npos);
  EXPECT_NE(metrics_result.body.find("bp_test_scored_total 42"),
            std::string::npos);

  const HttpResult json_result = get("/metrics.json");
  ASSERT_EQ(json_result.status, 200);
  EXPECT_NE(json_result.body.find("\"bp_test_scored_total\": 42"),
            std::string::npos);
  EXPECT_EQ(json_result.body.front(), '{');

  const HttpResult healthz = get("/healthz");
  ASSERT_EQ(healthz.status, 200);
  EXPECT_EQ(healthz.body, "ok\n");

  const HttpResult readyz = get("/readyz");
  ASSERT_EQ(readyz.status, 200);
  EXPECT_EQ(readyz.body, "ok\n");

  const HttpResult statusz = get("/statusz");
  ASSERT_EQ(statusz.status, 200);
  EXPECT_NE(statusz.body.find("live: true"), std::string::npos);
  EXPECT_NE(statusz.body.find("ready: true"), std::string::npos);
  EXPECT_NE(statusz.body.find("model_version: 1"), std::string::npos);
  EXPECT_NE(statusz.body.find("example_line: 1"), std::string::npos);

  const HttpResult tracez = get("/tracez");
  ASSERT_EQ(tracez.status, 200);
  EXPECT_NE(tracez.body.find("trace=1 span=1 parent=0 name=request"),
            std::string::npos);
  EXPECT_NE(tracez.body.find("trace=2 span=2 parent=1 name=queue_wait"),
            std::string::npos);

  // ?trace=<id> keeps exactly that trace's events.
  const HttpResult filtered = get("/tracez?trace=2");
  ASSERT_EQ(filtered.status, 200);
  EXPECT_EQ(filtered.body.find("trace=1 "), std::string::npos);
  EXPECT_NE(filtered.body.find("trace=2 span=1 parent=0 name=request"),
            std::string::npos);
  EXPECT_NE(filtered.body.find("trace=2 span=2 parent=1 name=queue_wait"),
            std::string::npos);

  // ?n=K keeps the K most recent matching events.
  const HttpResult limited = get("/tracez?trace=2&n=1");
  ASSERT_EQ(limited.status, 200);
  EXPECT_EQ(limited.body.find("span=1"), std::string::npos);
  EXPECT_NE(limited.body.find("trace=2 span=2"), std::string::npos);

  // A filter that matches nothing is an empty 200, not an error; a
  // malformed value is the operator's typo and is refused 400.
  EXPECT_EQ(get("/tracez?trace=777").status, 200);
  EXPECT_TRUE(get("/tracez?trace=777").body.empty());
  EXPECT_EQ(get("/tracez?trace=bogus").status, 400);
  EXPECT_EQ(get("/tracez?n=bogus").status, 400);

  const HttpResult auditz = get("/auditz?n=10");
  ASSERT_EQ(auditz.status, 200);
  EXPECT_NE(auditz.body.find("\"session_id\": 7"), std::string::npos);
  EXPECT_NE(auditz.body.find("\"flagged\": true"), std::string::npos);

  const HttpResult missing = get("/nope");
  EXPECT_EQ(missing.status, 404);
  EXPECT_FALSE(missing.body.empty());

  // Non-GET and malformed requests are refused, not crashed on.
  EXPECT_NE(raw_request(server.port(),
                        "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .find("405"),
            std::string::npos);
  EXPECT_NE(raw_request(server.port(), "garbage\r\n\r\n").find("400"),
            std::string::npos);

  EXPECT_GE(server.requests(), 9u);
  server.stop();
  server.stop();  // idempotent
  EXPECT_FALSE(server.running());
}

TEST(ObsIntrospect, EndpointsWithoutSourcesAnswer404OrBareLiveness) {
  IntrospectionServer server(Sources{});
  ASSERT_TRUE(server.running()) << server.error();
  const auto get = [&](const std::string& target) {
    return http_get("127.0.0.1", server.port(), target);
  };
  EXPECT_EQ(get("/metrics").status, 404);
  EXPECT_EQ(get("/metrics.json").status, 404);
  EXPECT_EQ(get("/tracez").status, 404);
  EXPECT_EQ(get("/auditz").status, 404);
  // No health model: reaching the handler is the liveness proof, but
  // nothing can vouch for serving fitness.
  EXPECT_EQ(get("/healthz").status, 200);
  EXPECT_EQ(get("/readyz").status, 503);
  EXPECT_EQ(get("/statusz").status, 200);
}

TEST(ObsIntrospect, ReadyzFlipsWithPublishAndDegradedMode) {
  serve::ModelRegistry models;
  std::atomic<bool> degraded{false};
  slo::HealthModel health([&] {
    slo::HealthSignals signals;
    signals.model_version = models.version();
    signals.degraded_active = degraded.load();
    signals.workers = 2;
    return signals;
  });

  Sources sources;
  sources.health = &health;
  IntrospectionServer server(sources);
  ASSERT_TRUE(server.running()) << server.error();
  const auto readyz = [&] {
    return http_get("127.0.0.1", server.port(), "/readyz");
  };

  // Nothing published: alive, not fit to serve.
  EXPECT_EQ(http_get("127.0.0.1", server.port(), "/healthz").status, 200);
  const HttpResult before = readyz();
  EXPECT_EQ(before.status, 503);
  EXPECT_NE(before.body.find("nothing published"), std::string::npos);

  // Publish: readiness flips on the next scrape, no restart involved.
  ASSERT_EQ(models.publish(tiny_model()), 1u);
  EXPECT_EQ(readyz().status, 200);

  // Degraded mode active: pulled from rotation again.
  degraded.store(true);
  EXPECT_EQ(readyz().status, 503);
  degraded.store(false);
  EXPECT_EQ(readyz().status, 200);
}

TEST(ObsIntrospect, AuditzBoundsToLastN) {
  AuditTrail audit;
  for (std::uint64_t i = 0; i < 10; ++i) {
    audit.record(audit_record(i, true));
  }
  Sources sources;
  sources.audit = &audit;
  IntrospectionServer server(sources);
  ASSERT_TRUE(server.running()) << server.error();

  const HttpResult last3 =
      http_get("127.0.0.1", server.port(), "/auditz?n=3");
  ASSERT_EQ(last3.status, 200);
  std::size_t lines = 0;
  for (char c : last3.body) lines += c == '\n';
  EXPECT_EQ(lines, 3u);
  // The most recent records, oldest of them first.
  EXPECT_EQ(last3.body.find("\"session_id\": 6"), std::string::npos);
  EXPECT_NE(last3.body.find("\"session_id\": 7"), std::string::npos);
  EXPECT_NE(last3.body.find("\"session_id\": 9"), std::string::npos);
}

TEST(ObsIntrospect, BindFailureReportsInsteadOfRunning) {
  ServerConfig config;
  config.bind_address = "not-an-address";
  IntrospectionServer server(Sources{}, config);
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(server.error().empty());
  server.stop();  // must be safe on a never-started server
}

// Satellite: scrape /metrics and /tracez from N client threads while
// writer threads hammer the same instruments the way engine workers
// do.  Every response must be a complete parseable exposition; the
// whole test must run clean under TSan (tier1 sanitizer pass matches
// this suite).
TEST(ObsIntrospect, ConcurrentScrapeUnderMutation) {
  MetricsRegistry metrics;
  Counter& scored = metrics.counter("bp_load_scored_total", "scored");
  const std::array<std::uint64_t, 4> bounds{100, 1'000, 10'000, 100'000};
  Histogram& latency =
      metrics.histogram("bp_load_latency_us", bounds, "latency");
  TraceSink trace;

  Sources sources;
  sources.metrics = &metrics;
  sources.trace = &trace;
  IntrospectionServer server(sources);
  ASSERT_TRUE(server.running()) << server.error();

  constexpr int kWriters = 4;
  constexpr int kScrapers = 4;
  constexpr int kScrapesEach = 15;
  std::atomic<bool> stop_writers{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      std::uint64_t i = 0;
      while (!stop_writers.load(std::memory_order_relaxed)) {
        scored.increment(w);
        latency.observe(50 + (i % 1'000), w);
        TraceEvent event;
        event.trace_id = static_cast<std::uint64_t>(w) << 32 | i;
        event.span_id = 1;
        event.name = "score";
        trace.record(event);
        ++i;
      }
    });
  }

  std::atomic<int> bad_responses{0};
  std::vector<std::thread> scrapers;
  for (int s = 0; s < kScrapers; ++s) {
    scrapers.emplace_back([&] {
      for (int i = 0; i < kScrapesEach; ++i) {
        const HttpResult metrics_result =
            http_get("127.0.0.1", server.port(), "/metrics");
        if (metrics_result.status != 200 ||
            metrics_result.body.find(
                "# TYPE bp_load_scored_total counter") == std::string::npos ||
            metrics_result.body.find("bp_load_latency_us_count") ==
                std::string::npos) {
          bad_responses.fetch_add(1);
        }
        const HttpResult tracez =
            http_get("127.0.0.1", server.port(), "/tracez");
        if (tracez.status != 200) bad_responses.fetch_add(1);
      }
    });
  }

  for (std::thread& s : scrapers) s.join();
  stop_writers.store(true);
  for (std::thread& w : writers) w.join();

  EXPECT_EQ(bad_responses.load(), 0);
  EXPECT_GE(server.requests(), static_cast<std::uint64_t>(kScrapers) *
                                   kScrapesEach * 2);

  // With writers quiescent, one final scrape must agree with the
  // folded instrument values exactly.
  const HttpResult final_scrape =
      http_get("127.0.0.1", server.port(), "/metrics");
  ASSERT_EQ(final_scrape.status, 200);
  EXPECT_NE(final_scrape.body.find("bp_load_scored_total " +
                                   std::to_string(scored.value())),
            std::string::npos);
}

}  // namespace
}  // namespace bp::obs::introspect
