# Empty dependencies file for fraud_detection_service.
# This may be replaced when dependencies are built.
