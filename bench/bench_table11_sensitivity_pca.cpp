// Reproduces Table 11 (Appendix-4): sensitivity of model accuracy to the
// number of PCA components, with the feature set fixed at 28.
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace bp;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 60'000;

  std::printf("=== Table 11: sensitivity to the number of PCA components ===\n");
  const auto data = benchmark_support::make_training_dataset(n);

  util::TextTable table(
      {"PCA components", "Optimal clusters", "Model accuracy"});
  for (const std::size_t components : {6, 7, 8, 9, 10}) {
    core::PolygraphConfig config = core::PolygraphConfig::production();
    config.pca_components = components;
    const auto trained = benchmark_support::train_production(data, config);
    table.add_row(
        {std::to_string(components), std::to_string(config.k),
         util::format_double(100.0 * trained.summary.clustering_accuracy, 2) +
             "%"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\npaper reference: 7 components peak at 99.60%%; more components "
      "re-admit noise (curse of dimensionality), fewer lose signal.\n");
  return 0;
}
