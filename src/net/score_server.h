// The scoring ingress: POST /score over real TCP, in front of a
// sharded EngineRouter.
//
// This is the deployment surface the paper's FinOrg setting implies —
// a verdict served inline on web traffic, within §3's ~100 ms budget.
// The HTTP plumbing is the shared HttpListener (keep-alive +
// pipelining on); the body is one wire frame (net/wire.h); the answer
// is one wire frame carrying the verdict and the model version that
// produced it.
//
// Overload posture, outermost first:
//
//   1. shed-at-accept    — the listener drops connections beyond its
//                          bounded pending queue (overloaded());
//   2. in-flight budget  — a fixed slot table caps requests admitted
//                          but not yet answered across all
//                          connections.  Slot exhausted -> 503 with
//                          "in-flight budget exhausted" (counted in
//                          admission_rejected()); the slot index
//                          doubles as the engine correlation id, so
//                          dispatching a response back to its waiting
//                          handler is an array index, not a map;
//   3. engine policy     — each shard's bounded queue applies the
//                          EngineConfig overflow policy: kReject
//                          answers 503 immediately, kDropOldest
//                          displaces the oldest queued request, whose
//                          handler answers its client with an explicit
//                          "shed" wire frame.  (kBlock would park a
//                          handler thread on a full queue — legal, but
//                          the ingress default is kReject: at the
//                          network edge, backpressure means telling
//                          the client, not holding its socket.)
//
// Ordered teardown (stop()): stop intake (listener stops accepting,
// handlers answer in-flight frames but admit no new ones) -> drain
// shards (unblocks every handler waiting on a verdict) -> stop shards
// (ordered, 0..N-1) -> join the handler pool.  Every admitted request
// is answered before its connection closes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/engine_router.h"
#include "net/http_common.h"
#include "net/wire.h"
#include "obs/metrics_registry.h"
#include "serve/model_registry.h"

namespace bp::net {

struct ScoreServerConfig {
  // `listener.keep_alive` is forced on — a scoring ingress that closed
  // every connection would spend its budget on TCP handshakes.
  ListenerConfig listener;
  RouterConfig router;

  // Requests admitted (slot held) but not yet answered, across all
  // connections.  Also the hard bound on handler-blocked memory.
  std::size_t max_inflight = 1024;

  // Expected feature-vector length; frames with any other length are
  // refused with 400 before touching a slot.  0 = accept any length
  // (only for tests that control every client).
  std::size_t expected_features = 0;

  // Defensive bound on waiting for a verdict.  The engines answer
  // every admitted request, so this only fires if a shard is wedged;
  // the slot is then marked abandoned and reclaimed when the late
  // response arrives.
  std::chrono::milliseconds response_timeout{10'000};

  // Ingress counters land here when set ("<metrics_prefix>_ingress_*",
  // plus an "<metrics_prefix>_inflight" callback gauge and the
  // listener's "<metrics_prefix>_http_*" hardening gauges via
  // obs/export.h); the router's per-shard instruments are configured
  // via router.engine.registry.
  obs::MetricsRegistry* registry = nullptr;
  std::string metrics_prefix = "bp_net";
};

class ScoreServer {
 public:
  // Binds and serves immediately.  On bind failure running() is false
  // and error() says why (the router's shards are still constructed;
  // stop() tears everything down either way).
  ScoreServer(const serve::ModelRegistry& models, ScoreServerConfig config);
  ~ScoreServer();

  ScoreServer(const ScoreServer&) = delete;
  ScoreServer& operator=(const ScoreServer&) = delete;

  bool running() const noexcept { return listener_ && listener_->running(); }
  std::uint16_t port() const noexcept {
    return listener_ ? listener_->port() : 0;
  }
  std::string error() const { return listener_ ? listener_->error() : ""; }

  EngineRouter& router() noexcept { return router_; }
  const EngineRouter& router() const noexcept { return router_; }

  // HTTP requests answered / connections shed at accept (listener).
  std::uint64_t requests() const noexcept {
    return listener_ ? listener_->requests() : 0;
  }
  std::uint64_t overloaded() const noexcept {
    return listener_ ? listener_->overloaded() : 0;
  }
  // Frames refused 400 by the wire parser or the feature-length check.
  std::uint64_t malformed() const noexcept {
    return malformed_.load(std::memory_order_relaxed);
  }
  // Admissions refused 503: slot table exhausted + engine kReject.
  std::uint64_t admission_rejected() const noexcept {
    return admission_rejected_.load(std::memory_order_relaxed);
  }
  // Wire responses delivered (any status).
  std::uint64_t responses() const noexcept {
    return responses_.load(std::memory_order_relaxed);
  }
  std::size_t inflight() const noexcept {
    return inflight_.load(std::memory_order_relaxed);
  }

  // Ordered teardown; idempotent; the destructor calls it.
  void stop();

 private:
  // One waiting HTTP handler.  The slot's index in `slots_` is the
  // ScoreRequest::id correlation token.
  struct Slot {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    bool abandoned = false;  // handler timed out; reclaim on delivery
    serve::ScoreResponse response;
  };

  HttpResponse handle(const HttpRequest& request);
  void dispatch(const serve::ScoreResponse& response);
  std::optional<std::uint32_t> acquire_slot();
  void release_slot(std::uint32_t index);

  ScoreServerConfig config_;
  std::vector<Slot> slots_;
  std::mutex free_mutex_;
  std::vector<std::uint32_t> free_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::mutex stop_mutex_;
  std::atomic<std::uint64_t> malformed_{0};
  std::atomic<std::uint64_t> admission_rejected_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::size_t> inflight_{0};
  bool gauge_registered_ = false;
  // bp_trace_adopted_total: request frames carrying a t: trace context
  // this ingress adopted (the server half of the client's
  // bp_trace_propagated_total).  Null when no registry is configured.
  obs::Counter* trace_adopted_ = nullptr;

  // Router before listener: handlers reference the router, so it must
  // outlive (and be constructed before) the listener that runs them.
  EngineRouter router_;
  std::optional<HttpListener> listener_;
};

}  // namespace bp::net
