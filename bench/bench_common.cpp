#include "bench_common.h"

#include <algorithm>
#include <map>

namespace bp::benchmark_support {

traffic::Dataset make_training_dataset(std::size_t n_sessions) {
  traffic::TrafficConfig config;
  config.n_sessions = n_sessions;
  traffic::SessionGenerator generator(config);
  return generator.generate(traffic::experiment_feature_indices());
}

traffic::Dataset make_drift_dataset(std::size_t n_sessions) {
  traffic::TrafficConfig config;
  config.seed = 20230725;
  config.n_sessions = n_sessions;
  config.start_date = bp::util::Date::from_ymd(2023, 7, 20);
  config.end_date = bp::util::Date::from_ymd(2023, 11, 3);
  traffic::SessionGenerator generator(config);
  return generator.generate(traffic::experiment_feature_indices());
}

TrainedPolygraph train_production(const traffic::Dataset& data,
                                  core::PolygraphConfig config,
                                  const obs::ObsContext* obs) {
  core::Polygraph model(config);
  const ml::Matrix features =
      data.feature_matrix(model.config().feature_indices);
  const core::TrainingSummary summary =
      model.train(features, claimed_uas(data), obs);
  return TrainedPolygraph{std::move(model), summary};
}

std::vector<ua::UserAgent> claimed_uas(const traffic::Dataset& data) {
  std::vector<ua::UserAgent> out;
  out.reserve(data.size());
  for (const auto& record : data.records()) out.push_back(record.claimed);
  return out;
}

std::string describe_cluster_uas(const std::vector<ua::UserAgent>& uas) {
  // vendor display name -> sorted observed versions
  std::map<std::string, std::vector<int>> by_vendor;
  for (const auto& ua : uas) {
    by_vendor[std::string(ua::vendor_name(ua.vendor))].push_back(
        ua.major_version);
  }

  std::vector<std::string> fragments;
  for (auto& [vendor, versions] : by_vendor) {
    std::sort(versions.begin(), versions.end());
    versions.erase(std::unique(versions.begin(), versions.end()),
                   versions.end());
    std::size_t i = 0;
    while (i < versions.size()) {
      std::size_t j = i;
      while (j + 1 < versions.size() && versions[j + 1] == versions[j] + 1) {
        ++j;
      }
      std::string frag = vendor + " " + std::to_string(versions[i]);
      if (j > i) frag += "-" + std::to_string(versions[j]);
      fragments.push_back(std::move(frag));
      i = j + 1;
    }
  }
  std::sort(fragments.begin(), fragments.end());

  std::string out;
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    if (i != 0) out += ", ";
    out += fragments[i];
  }
  return out;
}

std::vector<std::size_t> paper_cluster_numbering(const core::Polygraph& model) {
  const std::size_t k = model.config().k;
  std::vector<std::size_t> mapping(k, static_cast<std::size_t>(-1));
  std::vector<bool> paper_id_used(std::max<std::size_t>(k, 11), false);

  // Anchor UA -> Table 3 cluster number.
  const std::pair<ua::UserAgent, std::size_t> anchors[] = {
      {{ua::Vendor::kChrome, 111, ua::Os::kWindows10}, 0},
      {{ua::Vendor::kFirefox, 110, ua::Os::kWindows10}, 1},
      {{ua::Vendor::kChrome, 60, ua::Os::kWindows10}, 2},
      {{ua::Vendor::kChrome, 114, ua::Os::kWindows10}, 3},
      {{ua::Vendor::kChrome, 80, ua::Os::kWindows10}, 4},
      {{ua::Vendor::kChrome, 105, ua::Os::kWindows10}, 5},
      {{ua::Vendor::kFirefox, 48, ua::Os::kWindows10}, 6},
      {{ua::Vendor::kFirefox, 96, ua::Os::kWindows10}, 9},
      {{ua::Vendor::kChrome, 95, ua::Os::kWindows10}, 10},
  };
  for (const auto& [anchor_ua, paper_id] : anchors) {
    if (paper_id >= paper_id_used.size()) continue;
    const auto internal = model.cluster_table().expected_cluster(anchor_ua);
    if (!internal || *internal >= k) continue;
    if (mapping[*internal] != static_cast<std::size_t>(-1)) continue;
    if (paper_id_used[paper_id]) continue;
    mapping[*internal] = paper_id;
    paper_id_used[paper_id] = true;
  }

  // Unanchored clusters (noise clusters and any anchor misses) take the
  // unused ids in ascending order — 7 and 8 first in the k=11 case.
  std::size_t next_free = 0;
  for (std::size_t internal = 0; internal < k; ++internal) {
    if (mapping[internal] != static_cast<std::size_t>(-1)) continue;
    while (next_free < paper_id_used.size() && paper_id_used[next_free]) {
      ++next_free;
    }
    if (next_free < paper_id_used.size()) {
      paper_id_used[next_free] = true;
      mapping[internal] = next_free;
    } else {
      mapping[internal] = internal;
    }
  }
  return mapping;
}

}  // namespace bp::benchmark_support
