#include "core/drift.h"

#include <algorithm>
#include <map>

#include "browser/release_db.h"

namespace bp::core {

std::optional<ua::UserAgent> DriftDetector::closest_known_release(
    const ua::UserAgent& release) const {
  const auto& table = model_->cluster_table();
  std::optional<ua::UserAgent> best;
  int best_gap = 1 << 30;
  for (const auto& [key, cluster] : table.entries()) {
    const ua::UserAgent candidate{
        static_cast<ua::Vendor>(key >> 16),
        static_cast<int>(key & 0xffff),
        ua::Os::kWindows10,
    };
    if (!ua::same_vendor(candidate.vendor, release.vendor)) continue;
    if (candidate.major_version >= release.major_version) continue;
    const int gap = release.major_version - candidate.major_version;
    if (gap < best_gap) {
      best_gap = gap;
      best = candidate;
    }
  }
  return best;
}

DriftReport DriftDetector::check(const traffic::Dataset& data,
                                 const std::vector<ua::UserAgent>& new_releases,
                                 bp::util::Date check_date) const {
  DriftReport report;
  const ml::Matrix features =
      data.feature_matrix(model_->config().feature_indices);
  const std::vector<std::size_t> clusters = model_->predict_clusters(features);

  for (const auto& release : new_releases) {
    // Tally this release's rows over predicted clusters.
    std::map<std::size_t, std::size_t> tally;
    std::size_t total = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (data.records()[i].claimed.key() != release.key()) continue;
      ++tally[clusters[i]];
      ++total;
    }
    if (total == 0) {
      report.skipped.push_back(release);
      continue;
    }

    DriftEntry entry;
    entry.release = release;
    entry.check_date = check_date;
    entry.sessions = total;
    std::size_t best_count = 0;
    for (const auto& [cluster, count] : tally) {
      if (count > best_count) {
        best_count = count;
        entry.predominant_cluster = cluster;
      }
    }
    entry.accuracy =
        static_cast<double>(best_count) / static_cast<double>(total);
    entry.accuracy_below_threshold = entry.accuracy < threshold_;

    if (const auto reference = closest_known_release(release)) {
      entry.reference_cluster =
          model_->cluster_table().expected_cluster(*reference);
      entry.cluster_changed =
          entry.reference_cluster.has_value() &&
          *entry.reference_cluster != entry.predominant_cluster;
    }

    report.retraining_required |= entry.triggers_retraining();
    report.entries.push_back(entry);
  }

  if (registry_ != nullptr) {
    obs::MetricsRegistry& r = *registry_;
    r.counter("bp_drift_checks_total", "drift checks run").increment();
    r.counter("bp_drift_releases_checked_total", "releases evaluated")
        .add(report.entries.size());
    // Zero-session releases previously surfaced only via the bespoke
    // DriftReport::skipped accessor; the counter makes a silently
    // unmonitored release visible to any scrape.
    r.counter("bp_drift_releases_skipped_total",
              "releases skipped for lack of sessions")
        .add(report.skipped.size());
    r.counter("bp_drift_retraining_signals_total",
              "checks that raised the retraining signal")
        .add(report.retraining_required ? 1 : 0);
    double min_accuracy = 1.0;
    for (const DriftEntry& entry : report.entries) {
      min_accuracy = std::min(min_accuracy, entry.accuracy);
    }
    r.gauge("bp_drift_last_min_accuracy",
            "lowest per-release accuracy of the latest check")
        .set(min_accuracy);
    r.gauge("bp_drift_last_skipped", "releases skipped in the latest check")
        .set(static_cast<double>(report.skipped.size()));
    r.gauge("bp_drift_last_retraining_required",
            "latest check raised the retraining signal")
        .set(report.retraining_required ? 1.0 : 0.0);
  }
  return report;
}

std::vector<DriftDetector::ScheduledCheck> DriftDetector::schedule(
    bp::util::Date from, bp::util::Date to, int days_after_release) {
  const auto& db = browser::ReleaseDatabase::instance();

  // Anchor on Firefox releases in the window (§6.6), then attach every
  // release (any vendor) that became public since the previous check.
  std::vector<const browser::BrowserRelease*> firefox;
  for (const auto& r : db.releases()) {
    if (r.vendor == ua::Vendor::kFirefox && r.release_date >= from &&
        r.release_date <= to) {
      firefox.push_back(&r);
    }
  }
  std::sort(firefox.begin(), firefox.end(),
            [](const auto* a, const auto* b) {
              return a->release_date < b->release_date;
            });

  std::vector<ScheduledCheck> checks;
  bp::util::Date window_start = from;
  for (const auto* ff : firefox) {
    ScheduledCheck check;
    check.date = ff->release_date + days_after_release;
    for (const auto& r : db.releases()) {
      if (r.release_date >= window_start && r.release_date <= check.date) {
        check.releases.push_back(r.user_agent());
      }
    }
    window_start = check.date + 1;
    if (!check.releases.empty()) checks.push_back(std::move(check));
  }
  return checks;
}

}  // namespace bp::core
