#include "net/http_common.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include "net/socket_ops.h"
#include "obs/prof/prof.h"

namespace bp::net {

namespace {

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

// Value of header `name` (case-insensitive) in `head`, which starts at
// the first header line (past the request/status line).  Empty view
// when absent.
std::string_view find_header(std::string_view head, std::string_view name) {
  std::size_t pos = 0;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon != std::string_view::npos &&
        iequals(trim(line.substr(0, colon)), name)) {
      return trim(line.substr(colon + 1));
    }
    pos = eol + 2;
  }
  return {};
}

bool parse_size(std::string_view text, std::size_t* out) noexcept {
  if (text.empty()) return false;
  std::size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    if (value > (SIZE_MAX - 9) / 10) return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

std::string_view status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

bool parse_request_head(std::string_view head, HttpRequest* out) {
  const std::size_t line_end = head.find("\r\n");
  std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return false;
  const std::string_view version = line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") return false;
  out->method = std::string(line.substr(0, sp1));
  out->target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  if (out->method.empty() || out->target.empty() || out->target[0] != '/') {
    return false;
  }
  const std::size_t q = out->target.find('?');
  out->path = out->target.substr(0, q);
  out->query =
      q == std::string::npos ? std::string() : out->target.substr(q + 1);

  out->keep_alive = version == "HTTP/1.1";
  out->content_length = 0;
  if (line_end == std::string_view::npos) return true;
  const std::string_view headers = head.substr(line_end + 2);
  const std::string_view connection = find_header(headers, "Connection");
  if (iequals(connection, "close")) out->keep_alive = false;
  if (iequals(connection, "keep-alive")) out->keep_alive = true;
  const std::string_view length = find_header(headers, "Content-Length");
  if (!length.empty() && !parse_size(length, &out->content_length)) {
    return false;
  }
  return true;
}

std::string serialize_response(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    std::string(status_reason(response.status)) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += response.keep_alive ? "Connection: keep-alive\r\n\r\n"
                             : "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

std::uint64_t query_uint(std::string_view query, std::string_view key,
                         std::uint64_t fallback) noexcept {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      const std::string_view value = pair.substr(eq + 1);
      if (value.empty()) return fallback;
      std::uint64_t parsed = 0;
      for (char c : value) {
        if (c < '0' || c > '9') return fallback;
        parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
      }
      return parsed;
    }
    pos = amp + 1;
  }
  return fallback;
}

QueryParam query_uint_checked(std::string_view query, std::string_view key,
                              std::uint64_t* out) noexcept {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      const std::string_view value = pair.substr(eq + 1);
      if (value.empty()) return QueryParam::kMalformed;
      std::uint64_t parsed = 0;
      for (char c : value) {
        if (c < '0' || c > '9') return QueryParam::kMalformed;
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (parsed > (UINT64_MAX - digit) / 10) return QueryParam::kMalformed;
        parsed = parsed * 10 + digit;
      }
      *out = parsed;
      return QueryParam::kOk;
    }
    pos = amp + 1;
  }
  return QueryParam::kAbsent;
}

// ---------------------------------------------------------------- listener

HttpListener::HttpListener(ListenerConfig config, Handler handler)
    : config_(std::move(config)), handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    error_ = "inet_pton: invalid bind address '" + config_.bind_address + "'";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    error_ = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  if (::listen(listen_fd_, 128) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }

  // Port 0 binds ephemerally; read the kernel's choice back so tests
  // (and the tier-1 smoke) can address the server.
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  running_.store(true, std::memory_order_release);
  const std::size_t n_handlers =
      std::max<std::size_t>(config_.handler_threads, 1);
  handlers_.reserve(n_handlers);
  for (std::size_t i = 0; i < n_handlers; ++i) {
    handlers_.emplace_back([this, i] { handler_loop(i); });
  }
  acceptor_ = std::thread([this] { acceptor_loop(); });
}

HttpListener::~HttpListener() { stop(); }

std::string HttpListener::error() const {
  std::lock_guard lock(error_mutex_);
  return error_;
}

void HttpListener::acceptor_loop() {
  obs::prof::ThreadHandle prof_handle("net.http_acceptor", 0);
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listen socket is gone; stop() is the only cause
    }
    sockops::set_io_timeout(fd, config_.io_timeout);
    {
      std::lock_guard lock(queue_mutex_);
      if (pending_.size() >= config_.max_pending) {
        // Shed at accept: better to drop a connection than to queue
        // unboundedly — the client retries (a scraper on its next
        // cadence, the load generator counting the loss).
        overloaded_.fetch_add(1, std::memory_order_relaxed);
        ::close(fd);
        continue;
      }
      pending_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void HttpListener::handler_loop(std::size_t lane) {
  obs::prof::ThreadHandle prof_handle("net.http_handler",
                                      static_cast<std::uint32_t>(lane));
  while (true) {
    int fd = -1;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [&] {
        return stopping_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (pending_.empty()) return;  // stopping and drained
      fd = pending_.front();
      pending_.pop_front();
    }
    serve_connection(fd);
    ::close(fd);
  }
}

void HttpListener::serve_connection(int fd) {
  using Clock = std::chrono::steady_clock;
  std::string buffer;
  char chunk[4096];
  const Clock::time_point opened = Clock::now();
  std::size_t served = 0;
  const auto lifetime_expired = [&] {
    return config_.max_connection_lifetime.count() > 0 &&
           Clock::now() - opened >= config_.max_connection_lifetime;
  };
  while (true) {
    // Reap a keep-alive connection that outlived its cap between
    // requests (a pipelined request already buffered is dropped with
    // the connection; clients treat the close as a retryable EOF).
    if (served > 0 && lifetime_expired()) {
      reaped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }

    // ---- assemble one full head (pipelined data may already be here) ----
    //
    // The header deadline starts at the first byte of this request —
    // waiting for a request to *begin* is idle keep-alive time, bounded
    // by io_timeout, not slow-loris time.  While mid-head, the kernel
    // recv timeout is clamped to the remaining window so a byte-per-
    // second peer is cut off at the deadline, not at deadline+io_timeout.
    std::size_t head_end = buffer.find("\r\n\r\n");
    bool recv_timeout_clamped = false;
    Clock::time_point head_deadline{};
    bool head_started = !buffer.empty();
    if (head_started && config_.header_timeout.count() > 0) {
      head_deadline = Clock::now() + config_.header_timeout;
    }
    while (head_end == std::string::npos) {
      if (buffer.size() > config_.max_head_bytes) {
        HttpResponse too_large;
        too_large.status = 431;
        too_large.body = "request head too large\n";
        requests_.fetch_add(1, std::memory_order_relaxed);
        sockops::send_all(fd, serialize_response(too_large));
        return;
      }
      // Between requests on an idle keep-alive connection, notice a
      // shutdown instead of blocking a full io_timeout on recv.
      if (buffer.empty() && stopping_.load(std::memory_order_acquire)) return;
      if (head_started && config_.header_timeout.count() > 0) {
        const auto remaining = head_deadline - Clock::now();
        if (remaining <= Clock::duration::zero()) {
          slowloris_.fetch_add(1, std::memory_order_relaxed);
          HttpResponse timed_out;
          timed_out.status = 408;
          timed_out.body = "request head timeout\n";
          requests_.fetch_add(1, std::memory_order_relaxed);
          sockops::send_all(fd, serialize_response(timed_out));
          return;
        }
        sockops::set_recv_timeout(
            fd, std::min(config_.io_timeout,
                         std::chrono::ceil<std::chrono::milliseconds>(
                             remaining)));
        recv_timeout_clamped = true;
      }
      const ssize_t n = sockops::recv_some(fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;  // signal: retry the recv
      if (n <= 0) {
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          // Timeout on an idle keep-alive connection is the reaper's
          // idle path.
          if (buffer.empty() && served > 0) {
            reaped_.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          // Timeout *mid-head*: loop so the header deadline at the
          // top decides — a clamped recv timing out IS the slow-loris
          // cutoff firing (the deadline check answers 408).
          if (head_started && config_.header_timeout.count() > 0) continue;
        }
        // EOF/error between requests is just the peer leaving;
        // nothing to answer.
        return;
      }
      if (!head_started) {
        head_started = true;
        if (config_.header_timeout.count() > 0) {
          head_deadline = Clock::now() + config_.header_timeout;
        }
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      head_end = buffer.find("\r\n\r\n");
    }
    if (recv_timeout_clamped) {
      sockops::set_recv_timeout(fd, config_.io_timeout);
    }

    HttpRequest request;
    if (!parse_request_head(
            std::string_view(buffer).substr(0, head_end + 2), &request)) {
      HttpResponse malformed;
      malformed.status = 400;
      malformed.body = "malformed request\n";
      requests_.fetch_add(1, std::memory_order_relaxed);
      sockops::send_all(fd, serialize_response(malformed));
      return;  // framing is lost; nothing downstream can be trusted
    }
    if (request.content_length > config_.max_body_bytes) {
      HttpResponse too_large;
      too_large.status = 413;
      too_large.body = "request body too large\n";
      requests_.fetch_add(1, std::memory_order_relaxed);
      sockops::send_all(fd, serialize_response(too_large));
      return;
    }

    // ---- assemble the body ----
    const std::size_t frame_end = head_end + 4 + request.content_length;
    while (buffer.size() < frame_end) {
      const ssize_t n = sockops::recv_some(fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;  // truncated request: nothing to answer
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    request.body =
        std::string_view(buffer).substr(head_end + 4, request.content_length);

    HttpResponse response = [&] {
      PROF_SCOPE("net.handle");
      return handler_(request);
    }();
    ++served;
    const bool request_capped =
        config_.max_requests_per_connection > 0 &&
        served >= config_.max_requests_per_connection;
    const bool client_keep_alive = config_.keep_alive && request.keep_alive &&
                                   response.status < 400 &&
                                   !stopping_.load(std::memory_order_acquire);
    response.keep_alive =
        client_keep_alive && !request_capped && !lifetime_expired();
    requests_.fetch_add(1, std::memory_order_relaxed);
    // A close forced by a reaper cap (not by the client, an error, or
    // shutdown) is a reap: the client is told via Connection: close and
    // reconnects at its leisure.  Counted *before* the response goes
    // out so an observer that has read the response also sees the reap.
    if (client_keep_alive && !response.keep_alive) {
      reaped_.fetch_add(1, std::memory_order_relaxed);
    }
    bool sent;
    {
      PROF_SCOPE("net.serialize");
      sent = sockops::send_all(fd, serialize_response(response));
    }
    if (!sent || !response.keep_alive) {
      return;
    }
    buffer.erase(0, frame_end);
  }
}

void HttpListener::begin_stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // Unblock accept() by shutting the listening socket down before
  // closing it; handlers notice via the flag between requests.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  queue_cv_.notify_all();
}

void HttpListener::stop() {
  begin_stop();
  std::lock_guard lock(stop_mutex_);
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& handler : handlers_) {
    if (handler.joinable()) handler.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Connections accepted but never picked up: close them so clients
  // get a reset instead of a hang.
  std::lock_guard queue_lock(queue_mutex_);
  for (int fd : pending_) ::close(fd);
  pending_.clear();
  running_.store(false, std::memory_order_release);
}

// ----------------------------------------------------------------- client

HttpClient::HttpClient(std::string host, std::uint16_t port,
                       std::chrono::milliseconds timeout)
    : host_(std::move(host)), port_(port), timeout_(timeout) {}

HttpClient::~HttpClient() { close(); }

void HttpClient::close() {
  {
    std::lock_guard<std::mutex> lock(fd_mutex_);
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  rx_.clear();
}

void HttpClient::abort_connection() {
  // shutdown() under the same lock that guards close(): an abort can
  // never land on a descriptor number the owner already released (and
  // the kernel may have reassigned).
  std::lock_guard<std::mutex> lock(fd_mutex_);
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

bool HttpClient::connect() {
  if (fd_ >= 0) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockops::set_io_timeout(fd, timeout_);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    error_ = "inet_pton: invalid literal IPv4 address '" + host_ + "'";
    ::close(fd);
    return false;
  }
  if (sockops::connect_fd(fd, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)) != 0) {
    error_ = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(fd_mutex_);
    fd_ = fd;
  }
  rx_.clear();
  ++connects_;
  return true;
}

bool HttpClient::send_all(std::string_view data) {
  if (!sockops::send_all(fd_, data)) {
    error_ = std::string("send: ") + std::strerror(errno);
    return false;
  }
  return true;
}

bool HttpClient::send_request(std::string_view method,
                              const std::string& target,
                              std::string_view body,
                              const std::string& content_type) {
  if (!connect()) return false;
  std::string request;
  request.reserve(128 + target.size() + body.size());
  request.append(method).append(" ").append(target).append(" HTTP/1.1\r\n");
  request.append("Host: ").append(host_).append("\r\n");
  if (!body.empty() || method == "POST") {
    request.append("Content-Type: ").append(content_type).append("\r\n");
    request.append("Content-Length: ")
        .append(std::to_string(body.size()))
        .append("\r\n");
  }
  request.append("\r\n").append(body);
  return send_all(request);
}

HttpResult HttpClient::read_response() {
  HttpResult result;
  if (fd_ < 0) {
    result.error = "not connected";
    return result;
  }
  char chunk[4096];
  std::size_t head_end;
  while ((head_end = rx_.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = sockops::recv_some(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      result.error = n == 0 ? "connection closed before response"
                            : std::string("recv: ") + std::strerror(errno);
      close();
      return result;
    }
    rx_.append(chunk, static_cast<std::size_t>(n));
  }

  // "HTTP/1.1 <code> ..." status line.
  const std::string_view head = std::string_view(rx_).substr(0, head_end);
  if (rx_.compare(0, 5, "HTTP/") != 0) {
    result.error = "malformed response";
    close();
    return result;
  }
  const std::size_t sp = head.find(' ');
  if (sp == std::string_view::npos || sp + 4 > head.size()) {
    result.error = "malformed status line";
    close();
    return result;
  }
  result.status = 0;
  for (std::size_t i = sp + 1; i < sp + 4; ++i) {
    if (head[i] < '0' || head[i] > '9') {
      result.status = -1;
      result.error = "malformed status code";
      close();
      return result;
    }
    result.status = result.status * 10 + (head[i] - '0');
  }

  const std::size_t line_end = head.find("\r\n");
  const std::string_view headers =
      line_end == std::string_view::npos ? std::string_view()
                                         : head.substr(line_end + 2);
  const std::string_view length_text = find_header(headers, "Content-Length");
  const bool server_closes =
      iequals(find_header(headers, "Connection"), "close");

  std::size_t content_length = 0;
  if (!length_text.empty() && !parse_size(length_text, &content_length)) {
    result.status = -1;
    result.error = "malformed Content-Length";
    close();
    return result;
  }

  if (!length_text.empty()) {
    const std::size_t frame_end = head_end + 4 + content_length;
    while (rx_.size() < frame_end) {
      const ssize_t n = sockops::recv_some(fd_, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        result.status = -1;
        result.error = "connection closed mid-body";
        close();
        return result;
      }
      rx_.append(chunk, static_cast<std::size_t>(n));
    }
    result.body = rx_.substr(head_end + 4, content_length);
    rx_.erase(0, frame_end);  // keep pipelined bytes behind this response
  } else {
    // No Content-Length: the body runs to EOF (HTTP/1.0 style).
    ssize_t n;
    while ((n = sockops::recv_some(fd_, chunk, sizeof(chunk))) > 0 ||
           (n < 0 && errno == EINTR)) {
      if (n > 0) rx_.append(chunk, static_cast<std::size_t>(n));
    }
    result.body = rx_.substr(head_end + 4);
    close();
    return result;
  }
  if (server_closes) close();
  return result;
}

HttpResult HttpClient::exchange(std::string_view method,
                                const std::string& target,
                                std::string_view body,
                                const std::string& content_type,
                                bool close_connection) {
  const bool had_connection = fd_ >= 0;
  if (!connect()) return {-1, "", error_};
  std::string request;
  request.reserve(160 + target.size() + body.size());
  request.append(method).append(" ").append(target).append(" HTTP/1.1\r\n");
  request.append("Host: ").append(host_).append("\r\n");
  if (!body.empty() || method == "POST") {
    request.append("Content-Type: ").append(content_type).append("\r\n");
    request.append("Content-Length: ")
        .append(std::to_string(body.size()))
        .append("\r\n");
  }
  if (close_connection) request.append("Connection: close\r\n");
  request.append("\r\n").append(body);

  if (!send_all(request)) {
    // A reused keep-alive connection may have been closed by the
    // server between requests; retry exactly once on a fresh one.
    close();
    if (!had_connection || !connect() || !send_all(request)) {
      return {-1, "", error_};
    }
  }
  HttpResult result = read_response();
  if (result.status < 0 && had_connection) {
    // Same keep-alive race on the read side (EOF instead of a
    // response): one retry on a fresh connection.
    close();
    if (connect() && send_all(request)) result = read_response();
  }
  if (close_connection) close();
  return result;
}

HttpResult HttpClient::get(const std::string& target, bool close_connection) {
  return exchange("GET", target, {}, "", close_connection);
}

HttpResult HttpClient::post(const std::string& target, std::string_view body,
                            const std::string& content_type,
                            bool close_connection) {
  return exchange("POST", target, body, content_type, close_connection);
}

HttpResult http_get(const std::string& host, std::uint16_t port,
                    const std::string& target,
                    std::chrono::milliseconds timeout) {
  HttpClient client(host, port, timeout);
  return client.get(target, /*close_connection=*/true);
}

HttpResult http_post(const std::string& host, std::uint16_t port,
                     const std::string& target, std::string_view body,
                     const std::string& content_type,
                     std::chrono::milliseconds timeout) {
  HttpClient client(host, port, timeout);
  return client.post(target, body, content_type, /*close_connection=*/true);
}

}  // namespace bp::net
