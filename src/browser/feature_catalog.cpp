#include "browser/feature_catalog.h"

#include <array>
#include <cassert>
#include <map>

#include "util/rng.h"

namespace bp::browser {

namespace {

// The 200 deviation-based candidate interfaces, in the collection order
// of Appendix-3 (transcribed verbatim, including the paper's spelling of
// "BytelengthQueuingStrategy" and "SVGAnimatedlengthList").
constexpr std::array<std::string_view, 200> kDeviationInterfaces = {
    // Appendix-3, first block.
    "Element", "Document", "HTMLElement", "SVGElement", "Navigator",
    "RTCIceCandidate", "SVGFEBlendElement", "TextMetrics", "Range",
    "StaticRange", "RTCRtpReceiver", "RTCPeerConnection",
    "AuthenticatorAttestationResponse", "FontFace", "HTMLVideoElement",
    "ResizeObserverEntry", "ShadowRoot", "RTCRtpSender", "PointerEvent",
    "Blob", "ServiceWorkerRegistration", "MediaSession", "PaymentResponse",
    "HTMLSourceElement", "Clipboard", "IDBTransaction", "Performance",
    "ServiceWorkerContainer", "HTMLIFrameElement", "PaymentRequest",
    "RTCRtpTransceiver", "IntersectionObserver", "CanvasRenderingContext2D",
    "CSSStyleSheet", "BaseAudioContext", "AudioContext", "HTMLLinkElement",
    "RTCDataChannel", "WritableStream", "DataTransferItem",
    "DocumentFragment", "HTMLMediaElement",
    // Appendix-3, second block.
    "StorageManager", "HTMLSlotElement", "Text", "WebGL2RenderingContext",
    "HTMLInputElement", "WebGLRenderingContext", "HTMLButtonElement",
    "HTMLTextAreaElement", "HTMLSelectElement", "MediaRecorder",
    "CountQueuingStrategy", "BytelengthQueuingStrategy", "PerformanceMark",
    "PerformanceMeasure", "HTMLImageElement", "SpeechSynthesisEvent",
    "HTMLFormElement", "IDBCursor", "HTMLTemplateElement", "CSSRule",
    "Location", "PaymentAddress", "IntersectionObserverEntry", "TextEncoder",
    "ImageData", "HTMLMetaElement", "Crypto", "GamepadButton",
    "DOMMatrixReadOnly", "MediaKeys", "MessageEvent", "IDBFactory",
    "MediaDevices", "OfflineAudioContext", "URL", "ScriptProcessorNode",
    "SVGAnimatedNumberList", "ServiceWorker", "SensorErrorEvent",
    "SVGAnimatedPreserveAspectRatio", "Sensor", "SVGAnimatedRect",
    "SVGAnimatedString", "Selection", "SecurityPolicyViolationEvent",
    "XPathExpression", "SVGAnimatedNumber", "SVGAnimatedTransformList",
    "Screen", "RTCTrackEvent", "SVGAnimateElement", "SVGAnimateMotionElement",
    "RTCStatsReport", "RTCSessionDescription", "SVGAnimateTransformElement",
    "ScreenOrientation", "SVGAnimatedlengthList", "XPathResult", "SVGAngle",
    "SVGAElement", "SubtleCrypto", "SVGAnimatedAngle",
    // Appendix-3, third block.
    "StyleSheetList", "StyleSheet", "StylePropertyMapReadOnly",
    "StylePropertyMap", "XPathEvaluator", "SVGAnimatedBoolean",
    "SharedWorker", "StorageEvent", "Storage", "StereoPannerNode",
    "SVGAnimatedEnumeration", "SpeechSynthesisUtterance",
    "SVGAnimatedInteger", "SVGAnimatedLength", "SpeechSynthesisErrorEvent",
    "SourceBufferList", "SourceBuffer", "WebGLFramebuffer",
    "PresentationConnection", "Plugin", "PluginArray", "PopStateEvent",
    "Presentation", "PresentationAvailability",
    "PresentationConnectionAvailableEvent",
    "PresentationConnectionCloseEvent", "PresentationConnectionList",
    "PresentationReceiver", "PresentationRequest", "ProcessingInstruction",
    "PictureInPictureWindow", "PermissionStatus", "PromiseRejectionEvent",
    "PerformanceNavigationTiming", "PerformanceObserver",
    "PerformanceObserverEntryList", "PerformancePaintTiming", "Permissions",
    "PerformanceResourceTiming", "PerformanceServerTiming",
    "PerformanceTiming", "PeriodicWave", "ProgressEvent",
    "PublicKeyCredential", "RTCDTMFToneChangeEvent", "RTCCertificate",
    "RTCDataChannelEvent", "RTCDTMFSender", "RTCPeerConnectionIceEvent",
    "Response", "PushManager", "PushSubscription", "PushSubscriptionOptions",
    "RadioNodeList", "ReadableStream", "ResizeObserver",
    "RelativeOrientationSensor", "RemotePlayback", "ReportingObserver",
    "Request", "SVGAnimationElement", "XMLHttpRequestEventTarget",
    // Appendix-3, fourth block.
    "SVGCircleElement", "TreeWalker", "WebGLTexture", "TextDecoderStream",
    "TextEncoderStream", "WebGLSync", "TextTrack", "TextTrackCue",
    "TextTrackCueList", "WebGLShaderPrecisionFormat", "TextTrackList",
    "TimeRanges", "Touch", "TouchEvent", "TouchList", "TrackEvent",
    "TransformStream", "WebGLTransformFeedback", "TextDecoder",
    "WebGLUniformLocation", "SVGTitleElement", "WebGLVertexArrayObject",
    "SVGSymbolElement", "SVGTextContentElement", "SVGTextElement",
    "SVGTextPathElement", "SVGTextPositioningElement", "SVGTransform",
    "TaskAttributionTiming", "SVGTransformList", "SVGTSpanElement",
    "SVGUnitTypes", "SVGUseElement", "SVGViewElement",
};

// Table 8's deviation-based production features, in table order.
constexpr std::array<std::string_view, 22> kFinalDeviationInterfaces = {
    "Element",
    "Document",
    "HTMLElement",
    "SVGElement",
    "SVGFEBlendElement",
    "TextMetrics",
    "Range",
    "StaticRange",
    "AuthenticatorAttestationResponse",
    "HTMLVideoElement",
    "ResizeObserverEntry",
    "ShadowRoot",
    "PointerEvent",
    "IntersectionObserver",
    "CanvasRenderingContext2D",
    "CSSStyleSheet",
    "AudioContext",
    "HTMLLinkElement",
    "HTMLMediaElement",
    "WebGL2RenderingContext",
    "WebGLRenderingContext",
    "CSSRule",
};

// Table 8's time-based production features (rows 23-28).
constexpr std::array<std::string_view, 6> kFinalTimeBased = {
    "Navigator.prototype.hasOwnProperty('deviceMemory')",
    "BaseAudioContext.prototype.hasOwnProperty('currentTime')",
    "HTMLVideoElement.prototype.hasOwnProperty('webkitDisplayingFullscreen')",
    "Screen.prototype.hasOwnProperty('orientation')",
    "Window.prototype.hasOwnProperty('speechSynthesis')",
    "CSSStyleDeclaration.prototype.hasOwnProperty('getPropertyValue')",
};

// Manual-analysis exclusions (§6.3): interfaces whose property counts
// move with common user configuration, making them unreliable even when
// their raw standard deviation looks attractive — Service Worker knobs
// (dom.serviceWorkers.enabled), plugin/extension surfaces,
// fingerprinting-resistance timers, clipboard/permission gating.
constexpr std::array<std::string_view, 12> kConfigSensitiveInterfaces = {
    "ServiceWorkerRegistration",
    "ServiceWorkerContainer",
    "ServiceWorker",
    "Navigator",
    "Plugin",
    "PluginArray",
    "Performance",
    "PerformanceTiming",
    "MediaDevices",
    "Clipboard",
    "Permissions",
    "SharedWorker",
};

std::string deviation_feature_name(std::string_view interface_name) {
  std::string out = "Object.getOwnPropertyNames(";
  out += interface_name;
  out += ".prototype).length";
  return out;
}

// Property-name vocabulary for synthesizing the 307 BrowserPrint-style
// presence features that are not among the production six.  The real
// BrowserPrint list enumerates concrete (interface, property) pairs that
// appeared or vanished across 2016-2020 browser releases; we synthesize
// stand-ins with the same shape and (in engine_timelines.cpp) the same
// statistical behaviour: almost all of them stopped moving before the
// paper's 2023 study window.
constexpr std::array<std::string_view, 28> kSynthInterfaces = {
    "Navigator",  "Window",   "Document",        "Element",
    "HTMLElement", "Screen",  "History",         "Location",
    "CSSStyleDeclaration",    "HTMLMediaElement", "HTMLVideoElement",
    "HTMLCanvasElement",      "CanvasRenderingContext2D",
    "AudioContext", "BaseAudioContext", "RTCPeerConnection",
    "XMLHttpRequest", "Performance", "Storage", "IDBDatabase",
    "ServiceWorkerContainer", "Notification", "Gamepad", "Battery",
    "NetworkInformation", "Bluetooth", "USB", "WakeLock",
};

constexpr std::array<std::string_view, 12> kSynthProperties = {
    "vendorSub",      "taintEnabled",   "webkitRequestFullscreen",
    "mozFullScreen",  "onwebkitanimationend", "registerProtocolHandler",
    "getUserMedia",   "webkitTemporaryStorage", "onpointerrawupdate",
    "oncancel",       "requestIdleCallback",    "createExpression",
};

}  // namespace

const FeatureCatalog& FeatureCatalog::instance() {
  static const FeatureCatalog catalog;
  return catalog;
}

FeatureCatalog::FeatureCatalog() {
  specs_.reserve(513);

  // 200 deviation-based candidates (Appendix-3 order).
  for (std::string_view iface : kDeviationInterfaces) {
    specs_.push_back(FeatureSpec{deviation_feature_name(iface),
                                 FeatureKind::kDeviationBased,
                                 /*in_final_set=*/false});
  }

  // 313 time-based candidates: the six production ones first, then 307
  // synthesized BrowserPrint-style names.
  for (std::string_view name : kFinalTimeBased) {
    specs_.push_back(
        FeatureSpec{std::string(name), FeatureKind::kTimeBased, true});
  }
  std::size_t synthesized = 0;
  for (std::size_t i = 0; synthesized < 307; ++i) {
    const std::string_view iface =
        kSynthInterfaces[i % kSynthInterfaces.size()];
    const std::string_view prop =
        kSynthProperties[(i / kSynthInterfaces.size()) % kSynthProperties.size()];
    std::string name = std::string(iface) + ".prototype.hasOwnProperty('" +
                       std::string(prop) + "_v" +
                       std::to_string(i / (kSynthInterfaces.size() *
                                           kSynthProperties.size())) +
                       "')";
    // Skip accidental collisions with the production six.
    bool duplicate = false;
    for (std::string_view final_name : kFinalTimeBased) {
      if (name == final_name) duplicate = true;
    }
    if (duplicate) continue;
    specs_.push_back(
        FeatureSpec{std::move(name), FeatureKind::kTimeBased, false});
    ++synthesized;
  }
  assert(specs_.size() == 513);

  // Mark + index the production 28 in Table 8 order.
  for (std::string_view iface : kFinalDeviationInterfaces) {
    const std::size_t idx = index_of(deviation_feature_name(iface));
    assert(idx != npos);
    specs_[idx].in_final_set = true;
    final_indices_.push_back(idx);
  }
  for (std::string_view name : kFinalTimeBased) {
    const std::size_t idx = index_of(name);
    assert(idx != npos);
    final_indices_.push_back(idx);
  }
  assert(final_indices_.size() == 28);

  for (std::string_view iface : kConfigSensitiveInterfaces) {
    const std::size_t idx = index_of(deviation_feature_name(iface));
    if (idx != npos) config_sensitive_.push_back(idx);
  }
}

std::size_t FeatureCatalog::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == name) return i;
  }
  return npos;
}

std::string FeatureCatalog::interface_of(std::string_view feature_name) {
  constexpr std::string_view kPrefix = "Object.getOwnPropertyNames(";
  constexpr std::string_view kSuffix = ".prototype).length";
  if (feature_name.size() <= kPrefix.size() + kSuffix.size()) return {};
  if (feature_name.substr(0, kPrefix.size()) != kPrefix) return {};
  if (feature_name.substr(feature_name.size() - kSuffix.size()) != kSuffix) {
    return {};
  }
  return std::string(feature_name.substr(
      kPrefix.size(), feature_name.size() - kPrefix.size() - kSuffix.size()));
}

std::vector<std::size_t> FeatureCatalog::appendix4_extension(
    std::size_t target_count) const {
  // Table 12's growth steps.  28 -> 32 and 32 -> 36 add the four features
  // the paper names; 36 -> 42 lists four names but grows by six — we add
  // FontFace and Blob to close the gap and document the discrepancy here.
  static constexpr std::array<std::string_view, 14> kSteps = {
      // 28 -> 32
      "HTMLIFrameElement", "SVGAElement", "RemotePlayback",
      "StylePropertyMapReadOnly",
      // 32 -> 36
      "Screen", "Request", "TouchEvent", "TaskAttributionTiming",
      // 36 -> 42
      "PictureInPictureWindow", "ReportingObserver", "HTMLTemplateElement",
      "MediaSession", "FontFace", "Blob",
  };
  std::vector<std::size_t> out;
  if (target_count <= 28) return out;
  const std::size_t extra = std::min<std::size_t>(target_count - 28, kSteps.size());
  for (std::size_t i = 0; i < extra; ++i) {
    const std::size_t idx = index_of(deviation_feature_name(kSteps[i]));
    assert(idx != npos);
    out.push_back(idx);
  }
  return out;
}

}  // namespace bp::browser
