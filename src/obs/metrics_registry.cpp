#include "obs/metrics_registry.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace bp::obs {

namespace {

// Format a gauge/callback value: integral values print without a
// fractional part so counters-exported-as-gauges stay readable.
std::string format_value(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v >= -9.2e18 && v <= 9.2e18) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

// Prometheus exposition: help text must escape backslash and newline,
// or a multi-line help string corrupts the whole scrape.
std::string escape_help(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::size_t Histogram::bucket_index(std::uint64_t value) const noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<std::size_t>(it - bounds_.begin());
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)) {
  for (Stripe& stripe : stripes_) {
    stripe.buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t b = 0; b <= bounds_.size(); ++b) {
      stripe.buckets[b].store(0, std::memory_order_relaxed);
    }
  }
  exemplars_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t b = 0; b <= bounds_.size(); ++b) {
    exemplars_[b].store(0, std::memory_order_relaxed);
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(n_buckets(), 0);
  for (const Stripe& stripe : stripes_) {
    for (std::size_t b = 0; b < out.size(); ++b) {
      out[b] += stripe.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : bucket_counts()) total += c;
  return total;
}

std::uint64_t Histogram::sum() const {
  std::uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    total += stripe.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::uint64_t> Histogram::exemplar_trace_ids() const {
  std::vector<std::uint64_t> out(n_buckets(), 0);
  for (std::size_t b = 0; b < out.size(); ++b) {
    out[b] = exemplars_[b].load(std::memory_order_relaxed);
  }
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  std::lock_guard lock(mutex_);
  auto it = instruments_.find(name);
  if (it != instruments_.end()) {
    if (it->second.kind == Kind::kCounter) return *it->second.counter;
    assert(false && "metric name re-registered as a different kind");
    static Counter scrap;
    return scrap;
  }
  Instrument instrument;
  instrument.kind = Kind::kCounter;
  instrument.help = std::string(help);
  instrument.counter = std::unique_ptr<Counter>(new Counter());
  return *instruments_.emplace(std::string(name), std::move(instrument))
              .first->second.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  std::lock_guard lock(mutex_);
  auto it = instruments_.find(name);
  if (it != instruments_.end()) {
    if (it->second.kind == Kind::kGauge) return *it->second.gauge;
    assert(false && "metric name re-registered as a different kind");
    static Gauge scrap;
    return scrap;
  }
  Instrument instrument;
  instrument.kind = Kind::kGauge;
  instrument.help = std::string(help);
  instrument.gauge = std::unique_ptr<Gauge>(new Gauge());
  return *instruments_.emplace(std::string(name), std::move(instrument))
              .first->second.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const std::uint64_t> bounds,
                                      std::string_view help) {
  std::lock_guard lock(mutex_);
  auto it = instruments_.find(name);
  if (it != instruments_.end()) {
    if (it->second.kind == Kind::kHistogram) return *it->second.histogram;
    assert(false && "metric name re-registered as a different kind");
    static Histogram scrap{std::vector<std::uint64_t>{}};
    return scrap;
  }
  Instrument instrument;
  instrument.kind = Kind::kHistogram;
  instrument.help = std::string(help);
  instrument.histogram = std::unique_ptr<Histogram>(
      new Histogram(std::vector<std::uint64_t>(bounds.begin(), bounds.end())));
  return *instruments_.emplace(std::string(name), std::move(instrument))
              .first->second.histogram;
}

void MetricsRegistry::gauge_callback(std::string_view name,
                                     std::function<double()> fn,
                                     std::string_view help) {
  std::lock_guard lock(mutex_);
  Instrument instrument;
  instrument.kind = Kind::kCallback;
  instrument.help = std::string(help);
  instrument.callback = std::move(fn);
  instruments_.insert_or_assign(std::string(name), std::move(instrument));
}

void MetricsRegistry::remove(std::string_view name) {
  std::lock_guard lock(mutex_);
  const auto it = instruments_.find(name);
  if (it != instruments_.end()) instruments_.erase(it);
}

std::optional<double> MetricsRegistry::read_value(std::string_view name) const {
  std::lock_guard lock(mutex_);
  const auto it = instruments_.find(name);
  if (it == instruments_.end()) return std::nullopt;
  const Instrument& instrument = it->second;
  switch (instrument.kind) {
    case Kind::kCounter:
      return static_cast<double>(instrument.counter->value());
    case Kind::kGauge:
      return instrument.gauge->value();
    case Kind::kCallback:
      return instrument.callback();
    case Kind::kHistogram:
      return static_cast<double>(instrument.histogram->count());
  }
  return std::nullopt;
}

std::optional<double> MetricsRegistry::read_histogram_over(
    std::string_view name, std::uint64_t threshold) const {
  std::lock_guard lock(mutex_);
  const auto it = instruments_.find(name);
  if (it == instruments_.end() || it->second.kind != Kind::kHistogram) {
    return std::nullopt;
  }
  const Histogram& h = *it->second.histogram;
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  // Bucket b counts samples <= bounds[b]; everything in a bucket whose
  // bound is <= threshold is certainly not over it.
  std::uint64_t over = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (b >= h.bounds().size() || h.bounds()[b] > threshold) over += counts[b];
  }
  return static_cast<double>(over);
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mutex_);
  return instruments_.size();
}

std::string MetricsRegistry::render_prometheus() const {
  std::lock_guard lock(mutex_);
  std::string out;
  out.reserve(instruments_.size() * 96);
  for (const auto& [name, instrument] : instruments_) {
    if (!instrument.help.empty()) {
      out += "# HELP " + name + " " + escape_help(instrument.help) + "\n";
    }
    switch (instrument.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(instrument.counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + format_value(instrument.gauge->value()) + "\n";
        break;
      case Kind::kCallback:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + format_value(instrument.callback()) + "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *instrument.histogram;
        out += "# TYPE " + name + " histogram\n";
        const std::vector<std::uint64_t> counts = h.bucket_counts();
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < counts.size(); ++b) {
          cumulative += counts[b];
          const std::string le =
              b < h.bounds().size() ? std::to_string(h.bounds()[b]) : "+Inf";
          out += name + "_bucket{le=\"" + le + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += name + "_sum " + std::to_string(h.sum()) + "\n";
        out += name + "_count " + std::to_string(cumulative) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::render_json() const {
  std::lock_guard lock(mutex_);
  std::string counters, gauges, histograms;
  for (const auto& [name, instrument] : instruments_) {
    switch (instrument.kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ", ";
        counters +=
            "\"" + name + "\": " + std::to_string(instrument.counter->value());
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ", ";
        gauges += "\"" + name + "\": " + format_value(instrument.gauge->value());
        break;
      case Kind::kCallback:
        if (!gauges.empty()) gauges += ", ";
        gauges += "\"" + name + "\": " + format_value(instrument.callback());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *instrument.histogram;
        if (!histograms.empty()) histograms += ", ";
        std::string bounds, counts;
        for (std::uint64_t b : h.bounds()) {
          if (!bounds.empty()) bounds += ", ";
          bounds += std::to_string(b);
        }
        for (std::uint64_t c : h.bucket_counts()) {
          if (!counts.empty()) counts += ", ";
          counts += std::to_string(c);
        }
        histograms += "\"" + name + "\": {\"bounds\": [" + bounds +
                      "], \"counts\": [" + counts +
                      "], \"sum\": " + std::to_string(h.sum()) +
                      ", \"count\": " + std::to_string(h.count());
        // Exemplars are emitted only when at least one bucket has one,
        // so histograms without tracing keep their exact prior shape.
        const std::vector<std::uint64_t> exemplar_ids = h.exemplar_trace_ids();
        bool any_exemplar = false;
        for (std::uint64_t id : exemplar_ids) any_exemplar |= id != 0;
        if (any_exemplar) {
          std::string exemplars;
          for (std::uint64_t id : exemplar_ids) {
            if (!exemplars.empty()) exemplars += ", ";
            exemplars += std::to_string(id);
          }
          histograms += ", \"exemplars\": [" + exemplars + "]";
        }
        histograms += "}";
        break;
      }
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

}  // namespace bp::obs
