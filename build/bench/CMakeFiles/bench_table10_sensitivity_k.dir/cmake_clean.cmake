file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_sensitivity_k.dir/bench_table10_sensitivity_k.cpp.o"
  "CMakeFiles/bench_table10_sensitivity_k.dir/bench_table10_sensitivity_k.cpp.o.d"
  "bench_table10_sensitivity_k"
  "bench_table10_sensitivity_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_sensitivity_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
