// Tests for entropy and anonymity-set statistics (§7.4 substrate).
#include <gtest/gtest.h>

#include <cmath>

#include "stats/entropy.h"

namespace bp::stats {
namespace {

TEST(Histogram, Counts) {
  const auto h = histogram(std::vector<std::string>{"a", "b", "a"});
  EXPECT_EQ(h.at("a"), 2u);
  EXPECT_EQ(h.at("b"), 1u);
}

TEST(Entropy, UniformTwoValues) {
  EXPECT_NEAR(shannon_entropy(std::vector<std::string>{"a", "b"}), 1.0, 1e-12);
}

TEST(Entropy, SingleValueIsZero) {
  EXPECT_DOUBLE_EQ(shannon_entropy(std::vector<std::string>{"x", "x", "x"}), 0.0);
}

TEST(Entropy, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(shannon_entropy(std::vector<std::string>{}), 0.0);
}

TEST(Entropy, UniformFourValuesIsTwoBits) {
  EXPECT_NEAR(shannon_entropy(std::vector<std::string>{"a", "b", "c", "d"}), 2.0, 1e-12);
}

TEST(Entropy, SkewedBelowUniform) {
  const double skewed = shannon_entropy(std::vector<std::string>{"a", "a", "a", "b"});
  EXPECT_LT(skewed, 1.0);
  EXPECT_GT(skewed, 0.0);
  // H(0.75, 0.25) = 0.811278...
  EXPECT_NEAR(skewed, 0.8112781244591328, 1e-12);
}

TEST(NormalizedEntropy, AllDistinctIsOne) {
  EXPECT_NEAR(normalized_entropy(std::vector<std::string>{"a", "b", "c", "d"}), 1.0, 1e-12);
}

TEST(NormalizedEntropy, ConstantIsZero) {
  EXPECT_DOUBLE_EQ(normalized_entropy(std::vector<std::string>{"x", "x", "x", "x"}), 0.0);
}

TEST(NormalizedEntropy, TinyInputsAreZero) {
  EXPECT_DOUBLE_EQ(normalized_entropy(std::vector<std::string>{"a"}), 0.0);
  EXPECT_DOUBLE_EQ(normalized_entropy(std::vector<std::string>{}), 0.0);
}

TEST(AnonymitySets, Buckets) {
  // 1 unique value, one set of size 3, one set of size 60.
  std::vector<std::string> values = {"solo"};
  for (int i = 0; i < 3; ++i) values.push_back("trio");
  for (int i = 0; i < 60; ++i) values.push_back("crowd");

  const AnonymitySetStats stats = anonymity_sets(values);
  EXPECT_EQ(stats.observations, 64u);
  EXPECT_EQ(stats.distinct_values, 3u);
  EXPECT_NEAR(stats.pct_unique, 100.0 / 64.0, 1e-9);
  EXPECT_NEAR(stats.pct_2_to_10, 300.0 / 64.0, 1e-9);
  EXPECT_NEAR(stats.pct_over_50, 6000.0 / 64.0, 1e-9);
  EXPECT_NEAR(stats.pct_unique + stats.pct_2_to_10 + stats.pct_11_to_50 +
                  stats.pct_over_50,
              100.0, 1e-9);
}

TEST(AnonymitySets, EmptyInput) {
  const AnonymitySetStats stats = anonymity_sets(std::vector<std::string>{});
  EXPECT_EQ(stats.observations, 0u);
  EXPECT_DOUBLE_EQ(stats.pct_unique, 0.0);
}

TEST(AnonymityDistribution, SumsToHundred) {
  std::vector<std::string> values;
  for (int i = 0; i < 5; ++i) values.push_back("a");
  for (int i = 0; i < 7; ++i) values.push_back("b");
  values.push_back("c");
  const auto dist = anonymity_distribution(values);
  double total = 0.0;
  for (const auto& [size, pct] : dist) total += pct;
  EXPECT_NEAR(total, 100.0, 1e-9);
  // Sizes present: 1, 5, 7 — ascending.
  ASSERT_EQ(dist.size(), 3u);
  EXPECT_EQ(dist[0].first, 1u);
  EXPECT_EQ(dist[2].first, 7u);
}

}  // namespace
}  // namespace bp::stats
