// Principal Component Analysis via eigen-decomposition of the covariance
// matrix (cyclic Jacobi rotations).
//
// Paper §6.4.2 uses PCA to project the 28 scaled features onto 7
// components capturing >= 98.5% of cumulative variance (Figure 2).  The
// feature count throughout this codebase stays in the low hundreds (268
// for the FingerprintJS baseline of Appendix-5 is the worst case), so a
// dense Jacobi solver on the d x d covariance matrix is exact, simple,
// and fast enough.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/matrix.h"

namespace bp::ml {

// Symmetric eigen-decomposition: fills `eigenvalues` (descending) and
// `eigenvectors` (columns matching eigenvalue order).  `a` must be
// symmetric; tolerance is on the off-diagonal Frobenius norm.
void symmetric_eigen(const Matrix& a, std::vector<double>& eigenvalues,
                     Matrix& eigenvectors, double tolerance = 1e-12,
                     int max_sweeps = 64);

class Pca {
 public:
  // Fit retaining `n_components` components (clamped to the feature
  // count).  Data is centered internally; callers typically standardize
  // first, matching the paper's pipeline.
  void fit(const Matrix& data, std::size_t n_components);

  Matrix transform(const Matrix& data) const;
  Matrix fit_transform(const Matrix& data, std::size_t n_components);

  // Single-row projection into a caller-owned buffer (`in.size() ==
  // n_features`, `out.size() == n_components()`).  Allocation-free for
  // the serving tier's per-session hot path.
  void transform_row(std::span<const double> in, std::span<double> out) const;

  // Reconstruct from component space back to (centered-removed) feature
  // space; lossless when n_components == n_features.
  Matrix inverse_transform(const Matrix& projected) const;

  bool fitted() const noexcept { return !eigenvalues_.empty(); }
  std::size_t n_components() const noexcept { return n_components_; }

  // Variance explained by each retained component, as a fraction of total
  // variance; and the cumulative sum over the first k components for any
  // k up to the feature count (used to reproduce Figure 2).
  std::vector<double> explained_variance_ratio() const;
  std::vector<double> cumulative_variance_ratio() const;

  const std::vector<double>& eigenvalues() const noexcept {
    return eigenvalues_;
  }
  const std::vector<double>& mean() const noexcept { return mean_; }
  const Matrix& components() const noexcept { return components_; }

  // Reconstruct a fitted projection from persisted parameters (model_io).
  static Pca from_params(std::vector<double> mean,
                         std::vector<double> eigenvalues, Matrix components);

 private:
  std::size_t n_components_ = 0;
  std::vector<double> mean_;
  std::vector<double> eigenvalues_;  // all of them, descending
  Matrix components_;                // n_features x n_components
};

}  // namespace bp::ml
