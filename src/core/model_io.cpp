#include "core/model_io.h"

#include <unistd.h>

#include <charconv>
#include <cstdio>

#include "util/csv.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/strings.h"

namespace bp::core {

namespace {

constexpr std::string_view kHeader = "browser-polygraph-model v1";
constexpr std::string_view kChecksumPrefix = "checksum ";

void emit_vector(std::string& out, std::string_view name,
                 const std::vector<double>& values) {
  out += name;
  for (double v : values) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %.17g", v);
    out += buf;
  }
  out += '\n';
}

void emit_matrix(std::string& out, std::string_view name,
                 const ml::Matrix& m) {
  out += name;
  out += ' ';
  out += std::to_string(m.rows());
  out += ' ';
  out += std::to_string(m.cols());
  out += '\n';
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g%c", row[c],
                    c + 1 == m.cols() ? '\n' : ' ');
      out += buf;
    }
  }
}

// Line-cursor over the serialized text that remembers the 1-based
// number of the line it last returned, so parse errors can point at
// the exact spot in the file.
class Reader {
 public:
  explicit Reader(std::string_view text) : lines_(bp::util::split(text, '\n')) {}

  std::optional<std::string_view> next() {
    while (pos_ < lines_.size()) {
      const std::string_view line = bp::util::trim(lines_[pos_++]);
      if (!line.empty()) return line;
    }
    return std::nullopt;
  }

  // Line number of the last line next() returned (1-based); after an
  // exhausted next(), the line just past the end — where the missing
  // content should have been.
  std::size_t line() const noexcept { return pos_; }

 private:
  std::vector<std::string_view> lines_;
  std::size_t pos_ = 0;
};

std::optional<std::vector<double>> parse_vector(std::string_view line,
                                                std::string_view name) {
  if (!bp::util::starts_with(line, name)) return std::nullopt;
  std::vector<double> out;
  for (std::string_view tok : bp::util::split(line.substr(name.size()), ' ')) {
    tok = bp::util::trim(tok);
    if (tok.empty()) continue;
    const auto v = bp::util::parse_double(tok);
    if (!v) return std::nullopt;
    out.push_back(*v);
  }
  return out;
}

LoadError error_at(LoadErrorCode code, std::size_t line,
                   std::string_view section) {
  return LoadError{code, line, std::string(section)};
}

// Matrix body parse: the header line was already consumed and matched
// `name`.  Distinguishes truncation (file ends mid-matrix) from
// malformed rows.
std::optional<ml::Matrix> parse_matrix(Reader& reader, std::string_view header,
                                       std::string_view name,
                                       LoadError& error) {
  const auto dims = bp::util::split(
      bp::util::trim(header.substr(name.size())), ' ');
  const auto bad_header = [&] {
    error = error_at(LoadErrorCode::kBadSection, reader.line(), name);
    return std::nullopt;
  };
  if (dims.size() != 2) return bad_header();
  const auto rows = bp::util::parse_int(dims[0]);
  const auto cols = bp::util::parse_int(dims[1]);
  if (!rows || !cols || *rows < 0 || *cols <= 0) return bad_header();

  ml::Matrix m(static_cast<std::size_t>(*rows), static_cast<std::size_t>(*cols));
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto line = reader.next();
    if (!line) {
      error = error_at(LoadErrorCode::kTruncated, reader.line(), name);
      return std::nullopt;
    }
    const auto values = parse_vector(*line, "");
    if (!values || values->size() != m.cols()) {
      error = error_at(LoadErrorCode::kBadSection, reader.line(), name);
      return std::nullopt;
    }
    std::copy(values->begin(), values->end(), m.row(r).begin());
  }
  return m;
}

std::optional<std::uint64_t> parse_hex64(std::string_view s) {
  s = bp::util::trim(s);
  if (s.empty() || s.size() > 16) return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value, 16);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

// Locate the checksum footer: the last non-empty line must read
// "checksum <hex>".  Returns the payload (everything before that line)
// and the declared checksum, or a typed error.
struct Footer {
  std::string_view payload;
  std::uint64_t declared = 0;
};

std::optional<Footer> split_footer(std::string_view text, LoadError& error) {
  std::size_t end = text.size();
  while (end > 0 && (text[end - 1] == '\n' || text[end - 1] == '\r' ||
                     text[end - 1] == ' ' || text[end - 1] == '\t')) {
    --end;
  }
  const std::size_t line_start = text.rfind('\n', end == 0 ? 0 : end - 1);
  const std::size_t footer_begin =
      line_start == std::string_view::npos ? 0 : line_start + 1;
  const std::string_view footer =
      bp::util::trim(text.substr(footer_begin, end - footer_begin));
  if (!bp::util::starts_with(footer, kChecksumPrefix)) {
    error = error_at(LoadErrorCode::kChecksumMissing, 0, "checksum");
    return std::nullopt;
  }
  const auto declared = parse_hex64(footer.substr(kChecksumPrefix.size()));
  if (!declared) {
    error = error_at(LoadErrorCode::kChecksumMissing, 0, "checksum");
    return std::nullopt;
  }
  return Footer{text.substr(0, footer_begin), *declared};
}

}  // namespace

std::string_view load_error_code_name(LoadErrorCode code) noexcept {
  switch (code) {
    case LoadErrorCode::kFileMissing: return "file_missing";
    case LoadErrorCode::kBadHeader: return "bad_header";
    case LoadErrorCode::kTruncated: return "truncated";
    case LoadErrorCode::kBadSection: return "bad_section";
    case LoadErrorCode::kChecksumMissing: return "checksum_missing";
    case LoadErrorCode::kChecksumMismatch: return "checksum_mismatch";
    case LoadErrorCode::kInjectedFault: return "injected_fault";
  }
  return "unknown";
}

std::string LoadError::message() const {
  std::string out(load_error_code_name(code));
  if (line > 0) {
    out += " at line ";
    out += std::to_string(line);
  }
  if (!section.empty()) {
    out += " (";
    out += section;
    out += ')';
  }
  return out;
}

std::uint64_t model_checksum(std::string_view payload) noexcept {
  return bp::util::fnv1a(payload);
}

std::string with_model_checksum(std::string payload) {
  // Strip an existing footer so re-sealing is idempotent.
  const std::size_t footer = payload.rfind("\nchecksum ");
  if (footer != std::string::npos) {
    payload.resize(footer + 1);
  } else if (bp::util::starts_with(payload, kChecksumPrefix)) {
    payload.clear();
  }
  if (!payload.empty() && payload.back() != '\n') payload += '\n';
  const std::uint64_t sum = model_checksum(payload);
  payload += kChecksumPrefix;
  payload += bp::util::to_hex(sum);
  payload += '\n';
  return payload;
}

std::string serialize_model(const Polygraph& model) {
  std::string out;
  out += kHeader;
  out += '\n';

  const PolygraphConfig& config = model.config();
  out += "features";
  for (std::size_t idx : config.feature_indices) {
    out += ' ';
    out += std::to_string(idx);
  }
  out += '\n';
  out += "pca_components " + std::to_string(config.pca_components) + '\n';
  out += "k " + std::to_string(config.k) + '\n';
  out += "vendor_distance " + std::to_string(config.vendor_distance) + '\n';
  out += "version_divisor " + std::to_string(config.version_divisor) + '\n';

  emit_vector(out, "scaler_means", model.scaler().means());
  emit_vector(out, "scaler_stddevs", model.scaler().stddevs());
  emit_vector(out, "pca_mean", model.pca().mean());
  emit_vector(out, "pca_eigenvalues", model.pca().eigenvalues());
  emit_matrix(out, "pca_matrix", model.pca().components());
  emit_matrix(out, "centroids", model.kmeans().centroids());

  out += "table " + std::to_string(model.cluster_table().size()) + '\n';
  for (const auto& [key, cluster] : model.cluster_table().entries()) {
    const auto vendor = static_cast<int>(key >> 16);
    const auto version = static_cast<int>(key & 0xffff);
    out += std::to_string(vendor) + ' ' + std::to_string(version) + ' ' +
           std::to_string(cluster) + '\n';
  }
  return with_model_checksum(std::move(out));
}

LoadResult deserialize_model(const std::string& text) {
  // Integrity first: a file that fails the checksum is not worth
  // structural diagnostics — its content is untrustworthy.
  LoadError error;
  const auto footer = split_footer(text, error);
  if (!footer) return error;
  if (model_checksum(footer->payload) != footer->declared) {
    return error_at(LoadErrorCode::kChecksumMismatch, 0, "checksum");
  }

  Reader reader(footer->payload);
  const auto header = reader.next();
  if (!header) {
    return error_at(LoadErrorCode::kTruncated, reader.line(), "header");
  }
  if (*header != kHeader) {
    return error_at(LoadErrorCode::kBadHeader, reader.line(), "header");
  }

  PolygraphConfig config;
  config.feature_indices.clear();

  auto line = reader.next();
  if (!line) {
    return error_at(LoadErrorCode::kTruncated, reader.line(), "features");
  }
  if (!bp::util::starts_with(*line, "features")) {
    return error_at(LoadErrorCode::kBadSection, reader.line(), "features");
  }
  for (std::string_view tok :
       bp::util::split(line->substr(sizeof("features") - 1), ' ')) {
    tok = bp::util::trim(tok);
    if (tok.empty()) continue;
    const auto v = bp::util::parse_int(tok);
    if (!v || *v < 0) {
      return error_at(LoadErrorCode::kBadSection, reader.line(), "features");
    }
    config.feature_indices.push_back(static_cast<std::size_t>(*v));
  }
  const std::size_t n_features = config.feature_indices.size();

  LoadError int_error;
  auto read_int = [&](std::string_view name) -> std::optional<std::int64_t> {
    const auto l = reader.next();
    if (!l) {
      int_error = error_at(LoadErrorCode::kTruncated, reader.line(), name);
      return std::nullopt;
    }
    if (!bp::util::starts_with(*l, name)) {
      int_error = error_at(LoadErrorCode::kBadSection, reader.line(), name);
      return std::nullopt;
    }
    const auto v = bp::util::parse_int(bp::util::trim(l->substr(name.size())));
    if (!v) {
      int_error = error_at(LoadErrorCode::kBadSection, reader.line(), name);
    }
    return v;
  };
  const auto pca_components = read_int("pca_components");
  if (!pca_components) return int_error;
  const auto k = read_int("k");
  if (!k) return int_error;
  const auto vendor_distance = read_int("vendor_distance");
  if (!vendor_distance) return int_error;
  const auto version_divisor = read_int("version_divisor");
  if (!version_divisor) return int_error;
  config.pca_components = static_cast<std::size_t>(*pca_components);
  config.k = static_cast<std::size_t>(*k);
  config.vendor_distance = static_cast<int>(*vendor_distance);
  config.version_divisor = static_cast<int>(*version_divisor);

  auto next_vector = [&](std::string_view name, std::size_t expected_size,
                         LoadError& err) -> std::optional<std::vector<double>> {
    const auto l = reader.next();
    if (!l) {
      err = error_at(LoadErrorCode::kTruncated, reader.line(), name);
      return std::nullopt;
    }
    auto values = parse_vector(*l, name);
    if (!values || values->size() != expected_size) {
      err = error_at(LoadErrorCode::kBadSection, reader.line(), name);
      return std::nullopt;
    }
    return values;
  };
  LoadError vec_error;
  const auto means = next_vector("scaler_means", n_features, vec_error);
  if (!means) return vec_error;
  const auto stddevs = next_vector("scaler_stddevs", n_features, vec_error);
  if (!stddevs) return vec_error;
  const auto pca_mean = next_vector("pca_mean", n_features, vec_error);
  if (!pca_mean) return vec_error;

  // Eigenvalue count equals the retained component count, which fit()
  // may have clamped below config.pca_components — validate against the
  // matrix instead, below.
  const auto eig_line = reader.next();
  if (!eig_line) {
    return error_at(LoadErrorCode::kTruncated, reader.line(),
                    "pca_eigenvalues");
  }
  const auto eigenvalues = parse_vector(*eig_line, "pca_eigenvalues");
  if (!eigenvalues) {
    return error_at(LoadErrorCode::kBadSection, reader.line(),
                    "pca_eigenvalues");
  }

  auto matrix_header = reader.next();
  if (!matrix_header) {
    return error_at(LoadErrorCode::kTruncated, reader.line(), "pca_matrix");
  }
  if (!bp::util::starts_with(*matrix_header, "pca_matrix")) {
    return error_at(LoadErrorCode::kBadSection, reader.line(), "pca_matrix");
  }
  LoadError matrix_error;
  const auto pca_matrix =
      parse_matrix(reader, *matrix_header, "pca_matrix", matrix_error);
  if (!pca_matrix) return matrix_error;
  // Cross-section consistency: the projection must map the model's
  // feature space (rows = features, columns = retained components).
  // fit() stores the full eigenvalue spectrum (all n_features of them)
  // but only the retained component columns, so the spectrum must at
  // least cover the retained components.
  if (pca_matrix->rows() != n_features ||
      pca_matrix->cols() > eigenvalues->size()) {
    return error_at(LoadErrorCode::kBadSection, reader.line(), "pca_matrix");
  }

  matrix_header = reader.next();
  if (!matrix_header) {
    return error_at(LoadErrorCode::kTruncated, reader.line(), "centroids");
  }
  if (!bp::util::starts_with(*matrix_header, "centroids")) {
    return error_at(LoadErrorCode::kBadSection, reader.line(), "centroids");
  }
  const auto centroids =
      parse_matrix(reader, *matrix_header, "centroids", matrix_error);
  if (!centroids) return matrix_error;
  // Centroids live in PCA space, one per cluster.
  if (centroids->rows() != config.k ||
      centroids->cols() != pca_matrix->cols()) {
    return error_at(LoadErrorCode::kBadSection, reader.line(), "centroids");
  }

  const auto table_count = read_int("table");
  if (!table_count) return int_error;
  if (*table_count < 0) {
    return error_at(LoadErrorCode::kBadSection, reader.line(), "table");
  }
  ClusterTable table;
  for (std::int64_t i = 0; i < *table_count; ++i) {
    const auto l = reader.next();
    if (!l) {
      return error_at(LoadErrorCode::kTruncated, reader.line(), "table");
    }
    const auto parts = bp::util::split(*l, ' ');
    if (parts.size() != 3) {
      return error_at(LoadErrorCode::kBadSection, reader.line(), "table");
    }
    const auto vendor = bp::util::parse_int(parts[0]);
    const auto version = bp::util::parse_int(parts[1]);
    const auto cluster = bp::util::parse_int(parts[2]);
    // A cluster id with no centroid would make every lookup of this UA
    // silently miss — reject rather than load a wrong model.
    if (!vendor || !version || !cluster ||
        static_cast<std::size_t>(*cluster) >= centroids->rows()) {
      return error_at(LoadErrorCode::kBadSection, reader.line(), "table");
    }
    table.assign(ua::UserAgent{static_cast<ua::Vendor>(*vendor),
                               static_cast<int>(*version)},
                 static_cast<std::size_t>(*cluster));
  }

  ml::KMeansConfig kconfig;
  kconfig.k = config.k;
  return Polygraph::from_parts(
      std::move(config), ml::StandardScaler::from_params(*means, *stddevs),
      ml::Pca::from_params(*pca_mean, *eigenvalues, *pca_matrix),
      ml::KMeans::from_centroids(*centroids, kconfig), std::move(table));
}

namespace {

// Crash-consistent write: tmp file + fsync + atomic rename.  A reader
// concurrently loading `path` sees either the previous complete file or
// the new complete file, never a partial one.
bool atomic_write_file(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = contents.empty() ||
            std::fwrite(contents.data(), 1, contents.size(), f) ==
                contents.size();
  ok = ok && std::fflush(f) == 0;
  ok = ok && ::fsync(::fileno(f)) == 0;
  ok = (std::fclose(f) == 0) && ok;
  if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) std::remove(tmp.c_str());
  return ok;
}

}  // namespace

bool save_model(const Polygraph& model, const std::string& path) {
  const std::string text = serialize_model(model);
  if (FAULT_POINT("model_io.write")) return false;
  if (FAULT_POINT("model_io.torn_write")) {
    // Simulate a crash after the caller was told the write succeeded
    // (e.g. an acked write the kernel never finished): a truncated file
    // lands at `path` directly, bypassing the tmp+rename protocol.  The
    // checksum footer is what catches this at load time.
    (void)bp::util::write_file(path, std::string_view(text).substr(
                                         0, text.size() / 2));
    return true;
  }
  return atomic_write_file(path, text);
}

LoadResult load_model(const std::string& path) {
  if (FAULT_POINT("model_io.read")) {
    return LoadError{LoadErrorCode::kInjectedFault, 0, "model_io.read"};
  }
  std::string text;
  if (!bp::util::read_file(path, text)) {
    return LoadError{LoadErrorCode::kFileMissing, 0, path};
  }
  return deserialize_model(text);
}

}  // namespace bp::core
