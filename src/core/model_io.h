// Model persistence.
//
// Training runs offline (§6.5); the serving tier loads a frozen model.
// The format is a line-oriented text file — human-diffable, so model
// updates can be code-reviewed the way FinOrg's risk team reviews rule
// changes — with a version header for forward compatibility and an
// FNV-1a checksum footer so a torn or bit-flipped file is detected
// before it can reach the serving registry.
//
// Failure reporting is typed: a load that fails says *what* broke
// (missing file, bad header, checksum mismatch, truncated or malformed
// section) and *where* (1-based line), so an operator can distinguish
// "wrong file" from "corrupt file" from "new format" at a glance.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/polygraph.h"

namespace bp::core {

enum class LoadErrorCode : std::uint8_t {
  kFileMissing,       // file absent or unreadable
  kBadHeader,         // first line is not the expected format/version
  kTruncated,         // ran out of lines inside a section
  kBadSection,        // a section is malformed (bad numbers, wrong dims)
  kChecksumMissing,   // no checksum footer (torn write lost the tail)
  kChecksumMismatch,  // payload does not hash to the footer value
  kInjectedFault,     // a FAULT_POINT fired (chaos testing only)
};

std::string_view load_error_code_name(LoadErrorCode code) noexcept;

struct LoadError {
  LoadErrorCode code = LoadErrorCode::kBadSection;
  std::size_t line = 0;  // 1-based line of the failure; 0 = whole file
  std::string section;   // e.g. "header", "scaler_means", "pca_matrix"

  // "checksum_mismatch at line 12 (pca_matrix)" — for logs.
  std::string message() const;
};

// Result of deserialize_model / load_model: either a Polygraph or a
// LoadError.  Mirrors the std::optional surface (has_value, operator*,
// operator->) so call sites that only care about success read the same
// as before; failure paths can now ask error() why.
class LoadResult {
 public:
  LoadResult(Polygraph model) : model_(std::move(model)) {}
  LoadResult(LoadError error) : error_(std::move(error)) {}

  bool has_value() const noexcept { return model_.has_value(); }
  explicit operator bool() const noexcept { return has_value(); }

  Polygraph& operator*() noexcept { return *model_; }
  const Polygraph& operator*() const noexcept { return *model_; }
  Polygraph* operator->() noexcept { return &*model_; }
  const Polygraph* operator->() const noexcept { return &*model_; }
  Polygraph& value() noexcept { return *model_; }
  const Polygraph& value() const noexcept { return *model_; }

  // Valid only when !has_value().
  const LoadError& error() const noexcept { return error_; }

 private:
  std::optional<Polygraph> model_;
  LoadError error_{};
};

// Checksum of the serialized payload (everything before the footer
// line).  Exposed so tests and tooling can re-seal a hand-edited model.
std::uint64_t model_checksum(std::string_view payload) noexcept;

// Strip any existing checksum footer from `payload` and append a
// freshly computed one.
std::string with_model_checksum(std::string payload);

// Serialize a trained model.  The result is self-contained: config,
// scaler parameters, PCA projection, k-means centroids, the
// UA <-> cluster table, and a trailing checksum footer.
std::string serialize_model(const Polygraph& model);

// Parse a serialized model; a typed LoadError on any structural or
// integrity failure (bad header, truncated matrix, malformed numbers,
// checksum mismatch).
LoadResult deserialize_model(const std::string& text);

// Persist atomically: write to `path + ".tmp"`, fsync, then rename over
// `path`, so a crash mid-write leaves either the old file or the new
// one — never a torn hybrid.  False on IO failure (the tmp file is
// removed).
bool save_model(const Polygraph& model, const std::string& path);

// Read + deserialize; LoadErrorCode::kFileMissing when unreadable.
LoadResult load_model(const std::string& path);

}  // namespace bp::core
