// The network-plane hardening suite: the fault-injectable socket seam
// (net/socket_ops.h) and the listener's slow-loris / keep-alive-reaper
// defenses (DESIGN.md §15).  Everything here runs over real sockets;
// the injected faults are deterministic (util/fault.h), so a failing
// run replays.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <string>
#include <thread>

#include "net/http_common.h"
#include "net/socket_ops.h"
#include "util/fault.h"

namespace bp::net {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

std::chrono::milliseconds sock_timeout(int fd, int option) {
  timeval tv{};
  socklen_t len = sizeof(tv);
  if (::getsockopt(fd, SOL_SOCKET, option, &tv, &len) != 0) return -1ms;
  return std::chrono::milliseconds(tv.tv_sec * 1000 + tv.tv_usec / 1000);
}

HttpListener::Handler echo_handler() {
  return [](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.method + " " + request.path + " " +
                    std::string(request.body) + "\n";
    return response;
  };
}

// Poll `condition` until it holds or `deadline_ms` elapses — the
// reaper acts on a handler thread's schedule, not the test's.
template <typename Fn>
bool eventually(Fn condition, int deadline_ms = 3000) {
  const Clock::time_point give_up = Clock::now() + 1ms * deadline_ms;
  while (Clock::now() < give_up) {
    if (condition()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return condition();
}

// --------------------------------------------------------- socket seam

// The regression the seam was built on top of: an I/O deadline must
// cover BOTH directions.  A peer that stops reading wedges send()
// exactly like a peer that stops writing wedges recv().
TEST(SockOps, SetIoTimeoutSetsBothDirections) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockops::set_io_timeout(fd, 1500ms);
  EXPECT_EQ(sock_timeout(fd, SO_RCVTIMEO), 1500ms);
  EXPECT_EQ(sock_timeout(fd, SO_SNDTIMEO), 1500ms);
  ::close(fd);
}

TEST(SockOps, PerDirectionTimeoutsAreIndependent) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockops::set_recv_timeout(fd, 100ms);
  sockops::set_send_timeout(fd, 700ms);
  EXPECT_EQ(sock_timeout(fd, SO_RCVTIMEO), 100ms);
  EXPECT_EQ(sock_timeout(fd, SO_SNDTIMEO), 700ms);
  ::close(fd);
}

// Behavioral half of the regression: with the send timeout set, a
// full socket buffer (a peer that never reads) unwedges send() within
// the deadline instead of blocking forever.
TEST(SockOps, SendUnwedgesWhenThePeerStopsReading) {
  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  sockops::set_io_timeout(pair[0], 100ms);
  const std::string block(64 * 1024, 'x');
  const Clock::time_point start = Clock::now();
  // Nobody reads pair[1]; keep writing until the kernel buffer fills
  // and the timeout fires.
  bool timed_out = false;
  for (int i = 0; i < 1024 && !timed_out; ++i) {
    if (!sockops::send_all(pair[0], block)) {
      timed_out = errno == EAGAIN || errno == EWOULDBLOCK;
      break;
    }
  }
  EXPECT_TRUE(timed_out);
  EXPECT_LT(Clock::now() - start, 3s);
  ::close(pair[0]);
  ::close(pair[1]);
}

TEST(SockOps, InjectedEintrDoesNotTouchTheSocket) {
  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  ASSERT_EQ(::send(pair[1], "hi", 2, 0), 2);
  char buf[8];
  {
    util::ScopedFaults faults("net.sock.recv.eintr:1");
    errno = 0;
    EXPECT_EQ(sockops::recv_some(pair[0], buf, sizeof(buf)), -1);
    EXPECT_EQ(errno, EINTR);
  }
  // The injected EINTR consumed nothing: the bytes are still there.
  EXPECT_EQ(sockops::recv_some(pair[0], buf, sizeof(buf)), 2);
  ::close(pair[0]);
  ::close(pair[1]);
}

TEST(SockOps, SendAllFinishesUnderInjectedPartialWrites) {
  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  const std::string payload(997, 'p');
  // A peer must drain concurrently: one-byte sends carry large per-skb
  // kernel overhead, so an undrained socketpair fills up fast.
  std::string received;
  std::thread reader([&] {
    char buf[4096];
    ssize_t n;
    while (received.size() < payload.size() &&
           (n = ::recv(pair[1], buf, sizeof(buf), 0)) > 0) {
      received.append(buf, static_cast<std::size_t>(n));
    }
  });
  {
    util::ScopedFaults faults("net.sock.send.partial:1");
    ASSERT_TRUE(sockops::send_all(pair[0], payload));
    // Every write was clamped to one byte (the final single-byte send
    // has nothing left to clamp, so it does not evaluate the point).
    EXPECT_GE(util::FaultRegistry::instance().fires("net.sock.send.partial"),
              payload.size() - 1);
  }
  reader.join();
  EXPECT_EQ(received, payload);  // fragmented, never lost
  ::close(pair[0]);
  ::close(pair[1]);
}

// The end-to-end guarantee the seam exists for: a full HTTP exchange
// survives pathological fragmentation and signal interruptions on
// both sides (listener and client share the seam in-process).
TEST(SockOps, HttpExchangeSurvivesShortReadsEintrAndPartialWrites) {
  ListenerConfig config;
  config.keep_alive = true;
  HttpListener listener(config, echo_handler());
  ASSERT_TRUE(listener.running()) << listener.error();
  util::ScopedFaults faults(
      "net.sock.recv.short:1,net.sock.send.partial:1,"
      "net.sock.recv.eintr:0.2:3,net.sock.send.eintr:0.2:5");
  const HttpResult result =
      http_post("127.0.0.1", listener.port(), "/echo", "payload", "text/plain",
                5000ms);
  ASSERT_EQ(result.status, 200) << result.error;
  EXPECT_EQ(result.body, "POST /echo payload\n");
}

TEST(SockOps, InjectedConnectRefusalIsTyped) {
  ListenerConfig config;
  HttpListener listener(config, echo_handler());
  ASSERT_TRUE(listener.running()) << listener.error();
  HttpClient client("127.0.0.1", listener.port());
  {
    util::ScopedFaults faults("net.sock.connect:1");
    EXPECT_FALSE(client.connect());
    EXPECT_FALSE(client.error().empty());
  }
  EXPECT_TRUE(client.connect()) << client.error();
}

TEST(SockOps, InjectedResetSurfacesAsTransportError) {
  ListenerConfig config;
  HttpListener listener(config, echo_handler());
  ASSERT_TRUE(listener.running()) << listener.error();
  util::ScopedFaults faults("net.sock.recv.reset:1");
  const Clock::time_point start = Clock::now();
  const HttpResult result = http_get("127.0.0.1", listener.port(), "/x");
  EXPECT_EQ(result.status, -1);
  EXPECT_FALSE(result.error.empty());
  EXPECT_LT(Clock::now() - start, 3s);  // typed failure, not a hang
}

// ------------------------------------------------- listener hardening

// A peer that sends half a request head and goes quiet is cut off at
// the header deadline with 408 — not held for io_timeout per byte.
TEST(HttpListenerHardening, SlowLorisIsCutOffAtTheHeaderDeadline) {
  ListenerConfig config;
  config.header_timeout = 150ms;
  config.io_timeout = 2000ms;
  HttpListener listener(config, echo_handler());
  ASSERT_TRUE(listener.running()) << listener.error();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(listener.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  const Clock::time_point start = Clock::now();
  const std::string_view partial_head = "GET /slow HTTP/1.1\r\nHos";
  ASSERT_EQ(::send(fd, partial_head.data(), partial_head.size(), 0),
            static_cast<ssize_t>(partial_head.size()));
  std::string response;
  char buf[1024];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  EXPECT_NE(response.find("408 Request Timeout"), std::string::npos)
      << response;
  // Cut at the header deadline, not at deadline + io_timeout.
  EXPECT_LT(Clock::now() - start, 1500ms);
  EXPECT_EQ(listener.slowloris(), 1u);
  EXPECT_EQ(listener.reaped(), 0u);
}

// An idle keep-alive connection is reaped after io_timeout and counted;
// the client's next request transparently reconnects.
TEST(HttpListenerHardening, IdleKeepAliveConnectionIsReaped) {
  ListenerConfig config;
  config.keep_alive = true;
  config.io_timeout = 100ms;
  HttpListener listener(config, echo_handler());
  ASSERT_TRUE(listener.running()) << listener.error();

  HttpClient client("127.0.0.1", listener.port());
  ASSERT_EQ(client.get("/a").status, 200);
  EXPECT_TRUE(eventually([&] { return listener.reaped() == 1; }));
  ASSERT_EQ(client.get("/b").status, 200);
  EXPECT_EQ(client.connects(), 2u);
}

TEST(HttpListenerHardening, MaxRequestsPerConnectionCapsReuse) {
  ListenerConfig config;
  config.keep_alive = true;
  config.max_requests_per_connection = 2;
  HttpListener listener(config, echo_handler());
  ASSERT_TRUE(listener.running()) << listener.error();

  HttpClient client("127.0.0.1", listener.port());
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(client.get("/r").status, 200) << "request " << i;
  }
  // Six requests at two per connection: three connections, and each
  // cap-closed connection counts as a policy reap.
  EXPECT_EQ(client.connects(), 3u);
  EXPECT_EQ(listener.requests(), 6u);
  EXPECT_GE(listener.reaped(), 2u);
}

TEST(HttpListenerHardening, LifetimeCapReapsBetweenRequests) {
  ListenerConfig config;
  config.keep_alive = true;
  // Generous cap: under a sanitizer, serving /a alone can cost tens of
  // milliseconds, and a connection that expires *before* /a's response
  // would throw the connect/reap counts off by one.
  config.max_connection_lifetime = 400ms;
  HttpListener listener(config, echo_handler());
  ASSERT_TRUE(listener.running()) << listener.error();

  HttpClient client("127.0.0.1", listener.port());
  ASSERT_EQ(client.get("/a").status, 200);
  std::this_thread::sleep_for(500ms);
  // /b arrives past the lifetime cap: it is still answered, but with
  // Connection: close (counted as a reap); /c then reconnects.
  ASSERT_EQ(client.get("/b").status, 200);
  EXPECT_EQ(listener.reaped(), 1u);
  ASSERT_EQ(client.get("/c").status, 200);
  EXPECT_EQ(client.connects(), 2u);
}

}  // namespace
}  // namespace bp::net
