// Tests for user-agent formatting, parsing, and Algorithm 1's vendor
// semantics.
#include <gtest/gtest.h>

#include "browser/release_db.h"
#include "ua/user_agent.h"

namespace bp::ua {
namespace {

TEST(Format, ChromeShape) {
  const std::string s =
      format_user_agent({Vendor::kChrome, 112, Os::kWindows10});
  EXPECT_NE(s.find("Chrome/112.0.0.0"), std::string::npos);
  EXPECT_NE(s.find("Windows NT 10.0"), std::string::npos);
  EXPECT_EQ(s.find("Edg/"), std::string::npos);
}

TEST(Format, EdgeContainsBothTokens) {
  const std::string s = format_user_agent({Vendor::kEdge, 114, Os::kWindows10});
  EXPECT_NE(s.find("Chrome/114"), std::string::npos);
  EXPECT_NE(s.find("Edg/114"), std::string::npos);
}

TEST(Format, EdgeLegacyShape) {
  const std::string s =
      format_user_agent({Vendor::kEdgeLegacy, 18, Os::kWindows10});
  EXPECT_NE(s.find("Edge/18"), std::string::npos);
}

TEST(Format, FirefoxShape) {
  const std::string s =
      format_user_agent({Vendor::kFirefox, 102, Os::kWindows10});
  EXPECT_NE(s.find("Gecko/20100101"), std::string::npos);
  EXPECT_NE(s.find("Firefox/102.0"), std::string::npos);
  EXPECT_NE(s.find("rv:102.0"), std::string::npos);
}

TEST(Format, Windows11ReportsFrozenPlatformToken) {
  // Windows 11 deliberately reports "Windows NT 10.0".
  const std::string s =
      format_user_agent({Vendor::kChrome, 112, Os::kWindows11});
  EXPECT_NE(s.find("Windows NT 10.0"), std::string::npos);
}

TEST(Parse, Chrome) {
  const UserAgent ua = parse_user_agent(
      "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
      "(KHTML, like Gecko) Chrome/112.0.0.0 Safari/537.36");
  EXPECT_EQ(ua.vendor, Vendor::kChrome);
  EXPECT_EQ(ua.major_version, 112);
}

TEST(Parse, EdgeBeatsChromeToken) {
  const UserAgent ua = parse_user_agent(
      "Mozilla/5.0 (Windows NT 10.0) AppleWebKit/537.36 (KHTML, like Gecko) "
      "Chrome/112.0.0.0 Safari/537.36 Edg/112.0.1722.48");
  EXPECT_EQ(ua.vendor, Vendor::kEdge);
  EXPECT_EQ(ua.major_version, 112);
}

TEST(Parse, EdgeLegacy) {
  const UserAgent ua = parse_user_agent(
      "Mozilla/5.0 (Windows NT 10.0) AppleWebKit/537.36 (KHTML, like Gecko) "
      "Chrome/64.0.3282.140 Safari/537.36 Edge/17.17134");
  EXPECT_EQ(ua.vendor, Vendor::kEdgeLegacy);
  EXPECT_EQ(ua.major_version, 17);
}

TEST(Parse, Firefox) {
  const UserAgent ua = parse_user_agent(
      "Mozilla/5.0 (Windows NT 10.0; rv:102.0) Gecko/20100101 Firefox/102.0");
  EXPECT_EQ(ua.vendor, Vendor::kFirefox);
  EXPECT_EQ(ua.major_version, 102);
}

TEST(Parse, UnknownString) {
  const UserAgent ua = parse_user_agent("curl/8.0.1");
  EXPECT_EQ(ua.vendor, Vendor::kUnknown);
  EXPECT_EQ(ua.major_version, 0);
}

TEST(Parse, EmptyString) {
  EXPECT_EQ(parse_user_agent("").vendor, Vendor::kUnknown);
}

TEST(Parse, OsDetection) {
  EXPECT_EQ(parse_user_agent(format_user_agent(
                                 {Vendor::kChrome, 110, Os::kMacSonoma}))
                .os,
            Os::kMacSonoma);
}

TEST(ParseLabel, Valid) {
  const auto ua = parse_label("Chrome 112");
  ASSERT_TRUE(ua.has_value());
  EXPECT_EQ(ua->vendor, Vendor::kChrome);
  EXPECT_EQ(ua->major_version, 112);
}

TEST(ParseLabel, EdgeVersionDisambiguatesEngine) {
  EXPECT_EQ(parse_label("Edge 17")->vendor, Vendor::kEdgeLegacy);
  EXPECT_EQ(parse_label("Edge 110")->vendor, Vendor::kEdge);
}

TEST(ParseLabel, Invalid) {
  EXPECT_FALSE(parse_label("Chrome").has_value());
  EXPECT_FALSE(parse_label("Chrome twelve").has_value());
  EXPECT_FALSE(parse_label("Netscape 4").has_value());
  EXPECT_FALSE(parse_label("Chrome 0").has_value());
}

TEST(Label, Rendering) {
  EXPECT_EQ((UserAgent{Vendor::kFirefox, 101, Os::kWindows10}).label(),
            "Firefox 101");
  // Both Edge lineages present as "Edge" to the analyst.
  EXPECT_EQ((UserAgent{Vendor::kEdgeLegacy, 18, Os::kWindows10}).label(),
            "Edge 18");
}

TEST(Key, DistinguishesVendorAndVersion) {
  const UserAgent a{Vendor::kChrome, 112, Os::kWindows10};
  const UserAgent b{Vendor::kChrome, 113, Os::kWindows10};
  const UserAgent c{Vendor::kEdge, 112, Os::kWindows10};
  EXPECT_NE(a.key(), b.key());
  EXPECT_NE(a.key(), c.key());
}

TEST(Key, IgnoresOs) {
  const UserAgent a{Vendor::kChrome, 112, Os::kWindows10};
  const UserAgent b{Vendor::kChrome, 112, Os::kMacSonoma};
  EXPECT_EQ(a.key(), b.key());
}

TEST(SameVendor, EdgeLineagesMatch) {
  EXPECT_TRUE(same_vendor(Vendor::kEdge, Vendor::kEdgeLegacy));
  EXPECT_TRUE(same_vendor(Vendor::kChrome, Vendor::kChrome));
  EXPECT_FALSE(same_vendor(Vendor::kChrome, Vendor::kEdge));
  EXPECT_FALSE(same_vendor(Vendor::kFirefox, Vendor::kChrome));
}

// Property: every release in the database survives a format -> parse
// round trip with vendor and version intact (the foundation of the whole
// detection pipeline: the claimed UA must be recoverable).
class UaRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UaRoundTrip, FormatParse) {
  const auto releases = browser::ReleaseDatabase::instance().releases();
  const auto& release = releases[GetParam() % releases.size()];
  for (const Os os : {Os::kWindows10, Os::kMacSonoma, Os::kLinux}) {
    const UserAgent original = release.user_agent(os);
    const UserAgent parsed = parse_user_agent(format_user_agent(original));
    EXPECT_EQ(parsed.vendor, original.vendor)
        << format_user_agent(original);
    EXPECT_EQ(parsed.major_version, original.major_version);
  }
}

INSTANTIATE_TEST_SUITE_P(AllReleases, UaRoundTrip,
                         ::testing::Range<std::size_t>(0, 179));

}  // namespace
}  // namespace bp::ua
