# Empty compiler generated dependencies file for bench_table3_cluster_map.
# This may be replaced when dependencies are built.
