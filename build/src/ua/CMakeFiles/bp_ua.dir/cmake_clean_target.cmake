file(REMOVE_RECURSE
  "libbp_ua.a"
)
