#include "serve/verdict_cache.h"

#include <bit>
#include <limits>

#include "obs/prof/contention.h"

namespace bp::serve {
namespace {

// splitmix64 finalizer — the same mix the EngineRouter uses for shard
// affinity, applied here to whiten the FNV accumulators.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::size_t round_up_pow2(std::size_t n) noexcept {
  if (n < 2) return 2;
  return std::bit_ceil(n);
}

// Detection <-> three 64-bit words.  expected_cluster's nullopt maps to
// an all-ones sentinel (cluster ids are tiny — k is 11 in production).
constexpr std::uint32_t kNoExpected = 0xffffffffu;

std::uint64_t pack_verdict_a(const core::Detection& d) noexcept {
  const std::uint32_t expected =
      d.expected_cluster ? static_cast<std::uint32_t>(*d.expected_cluster)
                         : kNoExpected;
  return (static_cast<std::uint64_t>(
              static_cast<std::uint32_t>(d.predicted_cluster))
          << 32) |
         expected;
}

std::uint64_t pack_verdict_b(const core::Detection& d) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(d.risk_factor))
          << 1) |
         (d.flagged ? 1u : 0u);
}

core::Detection unpack(std::uint64_t a, std::uint64_t b,
                       std::uint64_t distance_bits) noexcept {
  core::Detection d;
  d.predicted_cluster = static_cast<std::uint32_t>(a >> 32);
  const std::uint32_t expected = static_cast<std::uint32_t>(a);
  if (expected != kNoExpected) d.expected_cluster = expected;
  d.flagged = (b & 1) != 0;
  d.risk_factor = static_cast<std::int32_t>(static_cast<std::uint32_t>(b >> 1));
  d.centroid_distance2 = std::bit_cast<double>(distance_bits);
  return d;
}

}  // namespace

VerdictCache::VerdictCache(VerdictCacheConfig config)
    : slots_(round_up_pow2(config.capacity)),
      mask_(slots_.size() - 1),
      prefix_(std::move(config.metrics_prefix)) {
  if (config.registry != nullptr) {
    registry_ = config.registry;
  } else {
    owned_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = owned_.get();
  }
  hits_ = &registry_->counter(prefix_ + "_hits_total",
                              "verdicts served straight from the cache");
  misses_ = &registry_->counter(prefix_ + "_misses_total",
                                "lookups that had to fall through to scoring");
  stale_ = &registry_->counter(
      prefix_ + "_stale_total",
      "misses whose entry matched the key but an older model version");
  evictions_ = &registry_->counter(
      prefix_ + "_evictions_total",
      "live same-version entries displaced by a colliding key");
  inserts_ = &registry_->counter(prefix_ + "_inserts_total",
                                 "verdicts written into the cache");
  registry_->gauge(prefix_ + "_capacity", "cache slot count")
      .set(static_cast<double>(slots_.size()));
  registry_->gauge_callback(
      prefix_ + "_occupancy",
      [this] {
        return static_cast<double>(filled_.load(std::memory_order_relaxed));
      },
      "slots holding an entry (live or stale)");
  // Resolved once: record_event on the hot insert path must not pay the
  // registry's name lookup.
  insert_cas_losses_ =
      &obs::prof::ContentionRegistry::instance().site("serve.cache.insert_cas");
}

VerdictCache::~VerdictCache() {
  // The occupancy callback captures `this`; unhook it before the fields
  // it reads are torn down.
  registry_->remove(prefix_ + "_occupancy");
}

VerdictCache::Key VerdictCache::key_of(std::span<const std::int32_t> features,
                                       const ua::UserAgent& claimed) noexcept {
  // Two FNV-1a-style streams over the same words with independent bases
  // and (odd) multipliers, each whitened by splitmix64.  An engineered
  // collision in one stream does not survive the other.
  std::uint64_t h1 = 0xcbf29ce484222325ULL;  // FNV offset basis
  std::uint64_t h2 = 0x6c62272e07bb0142ULL;  // FNV-0 1024-bit basis word
  auto update = [&](std::uint64_t word) noexcept {
    h1 = (h1 ^ word) * 0x00000100000001b3ULL;  // FNV prime
    h2 = (h2 ^ word) * 0x9e3779b97f4a7c15ULL;  // odd golden-ratio constant
  };
  // Feature words are folded in pairs: the multiply chains are the
  // critical path of the submit-side hit (two dependent imuls per
  // word), and halving their length costs nothing — a pair-packed
  // word carries both values exactly, and the trailing length word
  // keeps {1, 2} and {1, 2, 0} distinct.
  std::size_t i = 0;
  for (; i + 1 < features.size(); i += 2) {
    update(static_cast<std::uint32_t>(features[i]) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                features[i + 1]))
            << 32));
  }
  if (i < features.size()) {
    update(static_cast<std::uint32_t>(features[i]));
  }
  update(claimed.key());
  update(static_cast<std::uint64_t>(features.size()));
  Key key{mix64(h1), mix64(h2 ^ h1)};
  if (key.primary == 0) key.primary = 0x9e3779b97f4a7c15ULL;  // 0 marks empty
  return key;
}

bool VerdictCache::lookup(const Key& key, std::uint64_t version,
                          core::Detection& out,
                          std::size_t stripe_hint) noexcept {
  const Slot& slot = slots_[key.primary & mask_];
  // One retry absorbs the common torn-read case (a writer finished
  // mid-read); a slot under sustained rewrite is treated as a miss
  // rather than spinning.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const std::uint32_t seq_before = slot.seq.load(std::memory_order_acquire);
    if ((seq_before & 1) != 0) continue;  // write in progress
    const std::uint64_t entry_key = slot.key.load(std::memory_order_relaxed);
    const std::uint64_t entry_check =
        slot.check.load(std::memory_order_relaxed);
    const std::uint64_t entry_version =
        slot.version.load(std::memory_order_relaxed);
    const std::uint64_t verdict_a =
        slot.verdict_a.load(std::memory_order_relaxed);
    const std::uint64_t verdict_b =
        slot.verdict_b.load(std::memory_order_relaxed);
    const std::uint64_t distance_bits =
        slot.distance_bits.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq_before) {
      continue;  // torn by a concurrent writer; retry once
    }
    if (entry_key != key.primary || entry_check != key.check) {
      break;  // empty slot or a different fingerprint lives here
    }
    if (entry_version != version) {
      // The verdict exists but was produced by another model version; a
      // hot swap leaves every old entry in exactly this state.
      stale_->increment(stripe_hint);
      break;
    }
    out = unpack(verdict_a, verdict_b, distance_bits);
    hits_->increment(stripe_hint);
    return true;
  }
  misses_->increment(stripe_hint);
  return false;
}

void VerdictCache::insert(const Key& key, std::uint64_t version,
                          const core::Detection& detection,
                          std::size_t stripe_hint) noexcept {
  Slot& slot = slots_[key.primary & mask_];
  std::uint32_t seq = slot.seq.load(std::memory_order_relaxed);
  if ((seq & 1) != 0) {
    insert_cas_losses_->record_event();
    return;  // another writer holds the slot
  }
  if (!slot.seq.compare_exchange_strong(seq, seq + 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
    insert_cas_losses_->record_event();
    return;  // lost the race; inserts are best-effort
  }
  // Exclusive between the CAS and the release below.
  const std::uint64_t old_key = slot.key.load(std::memory_order_relaxed);
  const std::uint64_t old_version =
      slot.version.load(std::memory_order_relaxed);
  slot.key.store(key.primary, std::memory_order_relaxed);
  slot.check.store(key.check, std::memory_order_relaxed);
  slot.version.store(version, std::memory_order_relaxed);
  slot.verdict_a.store(pack_verdict_a(detection), std::memory_order_relaxed);
  slot.verdict_b.store(pack_verdict_b(detection), std::memory_order_relaxed);
  slot.distance_bits.store(std::bit_cast<std::uint64_t>(
                               detection.centroid_distance2),
                           std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);
  inserts_->increment(stripe_hint);
  if (old_key == 0) {
    filled_.fetch_add(1, std::memory_order_relaxed);
  } else if (old_key != key.primary && old_version == version) {
    // Overwrote a *live* entry of the current version — a genuine
    // capacity eviction, unlike reclaiming a stale or same-key slot.
    evictions_->increment(stripe_hint);
  }
}

CacheStats VerdictCache::stats() const {
  CacheStats stats;
  stats.hits = hits_->value();
  stats.misses = misses_->value();
  stats.stale = stale_->value();
  stats.evictions = evictions_->value();
  stats.inserts = inserts_->value();
  stats.occupancy = filled_.load(std::memory_order_relaxed);
  stats.capacity = slots_.size();
  return stats;
}

}  // namespace bp::serve
