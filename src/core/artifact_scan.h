// Automated vendor-artifact scanning (§8's proposed future work, built).
//
// Manual analysis found tool-specific globals (ANTBROWSER, ...); this
// module turns those findings into a maintained signature set that a
// collection script can evaluate with one getOwnPropertyNames(window)
// sweep.  It complements the clustering detector: artifacts identify the
// *specific tool* with certainty when present, while the coarse-grained
// model covers tools that keep their namespace clean.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bp::core {

struct ArtifactSignature {
  std::string tool;            // e.g. "AntBrowser"
  std::string exact_global;    // exact window-global name ("" if unused)
  std::string prefix;          // case-insensitive prefix ("" if unused)
};

struct ArtifactMatch {
  std::string tool;
  std::string matched_name;    // the window global that matched
};

class ArtifactScanner {
 public:
  // Scanner loaded with the built-in signature set (the §8 findings).
  static ArtifactScanner with_builtin_signatures();

  void add_signature(ArtifactSignature signature);
  std::size_t signature_count() const noexcept { return signatures_.size(); }

  // Scan a window-global namespace; returns every signature hit (empty
  // for clean browsers).  Names are matched exactly or by
  // case-insensitive prefix.
  std::vector<ArtifactMatch> scan(
      const std::vector<std::string>& window_globals) const;

  // Convenience: the first matching tool, if any.
  std::optional<std::string> identify(
      const std::vector<std::string>& window_globals) const;

 private:
  std::vector<ArtifactSignature> signatures_;
};

}  // namespace bp::core
