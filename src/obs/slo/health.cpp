#include "obs/slo/health.h"

#include <cstdio>

namespace bp::obs::slo {

HealthModel::HealthModel(SignalsFn signals, const SloEngine* slo)
    : signals_(std::move(signals)), slo_(slo) {}

HealthReport HealthModel::fold(const HealthSignals& signals,
                               AlertState worst_gating, AlertState worst_any) {
  HealthReport report;
  // Liveness: wedged only when the whole pool is stalled — one stuck
  // worker degrades throughput, all of them means no request will ever
  // be answered again and a restart is the only way out.
  const bool pool_wedged =
      signals.workers > 0 && signals.stalled_workers >= signals.workers;
  report.live = !pool_wedged;
  report.ready = report.live && signals.model_version != 0 &&
                 !signals.degraded_active &&
                 worst_gating != AlertState::kPage;
  report.worst_alert = worst_any;

  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "live: %s\nready: %s\nworst_alert: %s\nmodel_version: %llu%s\n"
      "degraded_active: %s\nstalled_workers: %llu/%llu\n"
      "retrain_breaker: %s\nstaleness_cycles: %llu\nquarantined_models: "
      "%llu\nqueue_depth: %llu/%llu\nshed_per_second: %.3f\narmed_faults: "
      "%llu\n",
      report.live ? "true" : "false", report.ready ? "true" : "false",
      std::string(alert_state_name(worst_any)).c_str(),
      static_cast<unsigned long long>(signals.model_version),
      signals.model_version == 0 ? " (nothing published)" : "",
      signals.degraded_active ? "true" : "false",
      static_cast<unsigned long long>(signals.stalled_workers),
      static_cast<unsigned long long>(signals.workers),
      signals.breaker_open ? "OPEN" : "closed",
      static_cast<unsigned long long>(signals.staleness_cycles),
      static_cast<unsigned long long>(signals.quarantined),
      static_cast<unsigned long long>(signals.queue_depth),
      static_cast<unsigned long long>(signals.queue_capacity),
      signals.shed_per_second,
      static_cast<unsigned long long>(signals.armed_faults));
  report.detail = buf;
  return report;
}

HealthReport HealthModel::evaluate() const {
  const HealthSignals signals = signals_ ? signals_() : HealthSignals{};
  const AlertState gating =
      slo_ != nullptr ? slo_->worst_state(/*gating_only=*/true)
                      : AlertState::kOk;
  const AlertState any =
      slo_ != nullptr ? slo_->worst_state() : AlertState::kOk;
  return fold(signals, gating, any);
}

}  // namespace bp::obs::slo
