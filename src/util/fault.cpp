#include "util/fault.h"

#include <cstdlib>

#include "util/rng.h"
#include "util/strings.h"

namespace bp::util {

namespace {

// Deterministic decision for evaluation `index` of a point armed with
// `seed`: map a mixed 64-bit hash to [0, 1) and compare against the
// firing probability.  Pure, so any interleaving of callers sees the
// same decision for the same (seed, index) pair.
bool decide(std::uint64_t seed, std::uint64_t index, double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  const std::uint64_t h = mix64(seed ^ mix64(index + 1));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < probability;
}

}  // namespace

FaultRegistry& FaultRegistry::instance() {
  static FaultRegistry registry;
  return registry;
}

FaultRegistry::FaultRegistry() {
  if (const char* env = std::getenv("BP_FAULTS")) arm_from_spec(env);
}

void FaultRegistry::arm(std::string_view point, double probability,
                        std::uint64_t seed) {
  std::lock_guard lock(mutex_);
  auto [it, inserted] = points_.insert_or_assign(
      std::string(point), Point{probability, seed, 0, 0});
  (void)it;
  if (inserted) armed_count_.fetch_add(1, std::memory_order_relaxed);
}

bool FaultRegistry::arm_from_spec(std::string_view spec) {
  for (std::string_view entry : split(spec, ',')) {
    entry = trim(entry);
    if (entry.empty()) continue;
    const auto fields = split(entry, ':');
    if (fields.empty() || fields.size() > 3) return false;
    const std::string_view name = trim(fields[0]);
    if (name.empty()) return false;
    double probability = 1.0;
    std::uint64_t seed = 0;
    if (fields.size() >= 2) {
      const auto p = parse_double(trim(fields[1]));
      if (!p || *p < 0.0 || *p > 1.0) return false;
      probability = *p;
    }
    if (fields.size() == 3) {
      const auto s = parse_int(trim(fields[2]));
      if (!s) return false;
      seed = static_cast<std::uint64_t>(*s);
    }
    arm(name, probability, seed);
  }
  return true;
}

bool FaultRegistry::arm_from_env() {
  const char* env = std::getenv("BP_FAULTS");
  if (env == nullptr) return false;
  return arm_from_spec(env);
}

void FaultRegistry::disarm(std::string_view point) {
  std::lock_guard lock(mutex_);
  const auto it = points_.find(point);
  if (it == points_.end()) return;
  points_.erase(it);
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultRegistry::disarm_all() {
  std::lock_guard lock(mutex_);
  armed_count_.fetch_sub(static_cast<int>(points_.size()),
                         std::memory_order_relaxed);
  points_.clear();
  trace_.clear();
}

bool FaultRegistry::armed(std::string_view point) const {
  std::lock_guard lock(mutex_);
  return points_.find(point) != points_.end();
}

bool FaultRegistry::should_fire(std::string_view point) {
  std::lock_guard lock(mutex_);
  const auto it = points_.find(point);
  if (it == points_.end()) return false;
  Point& p = it->second;
  const std::uint64_t index = p.evaluations++;
  if (!decide(p.seed, index, p.probability)) return false;
  ++p.fires;
  trace_.push_back(it->first + '#' + std::to_string(index));
  return true;
}

std::uint64_t FaultRegistry::evaluations(std::string_view point) const {
  std::lock_guard lock(mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.evaluations;
}

std::uint64_t FaultRegistry::fires(std::string_view point) const {
  std::lock_guard lock(mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

std::uint64_t FaultRegistry::total_fires() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [name, point] : points_) total += point.fires;
  return total;
}

std::vector<std::string> FaultRegistry::trace() const {
  std::lock_guard lock(mutex_);
  return trace_;
}

void FaultRegistry::reset_counters() {
  std::lock_guard lock(mutex_);
  for (auto& [name, point] : points_) {
    point.evaluations = 0;
    point.fires = 0;
  }
  trace_.clear();
}

}  // namespace bp::util
