
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/artifact_scan_test.cpp" "tests/CMakeFiles/bp_tests.dir/artifact_scan_test.cpp.o" "gcc" "tests/CMakeFiles/bp_tests.dir/artifact_scan_test.cpp.o.d"
  "/root/repo/tests/baseline_test.cpp" "tests/CMakeFiles/bp_tests.dir/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/bp_tests.dir/baseline_test.cpp.o.d"
  "/root/repo/tests/browser_catalog_test.cpp" "tests/CMakeFiles/bp_tests.dir/browser_catalog_test.cpp.o" "gcc" "tests/CMakeFiles/bp_tests.dir/browser_catalog_test.cpp.o.d"
  "/root/repo/tests/browser_extractor_test.cpp" "tests/CMakeFiles/bp_tests.dir/browser_extractor_test.cpp.o" "gcc" "tests/CMakeFiles/bp_tests.dir/browser_extractor_test.cpp.o.d"
  "/root/repo/tests/browser_timeline_test.cpp" "tests/CMakeFiles/bp_tests.dir/browser_timeline_test.cpp.o" "gcc" "tests/CMakeFiles/bp_tests.dir/browser_timeline_test.cpp.o.d"
  "/root/repo/tests/core_drift_model_io_test.cpp" "tests/CMakeFiles/bp_tests.dir/core_drift_model_io_test.cpp.o" "gcc" "tests/CMakeFiles/bp_tests.dir/core_drift_model_io_test.cpp.o.d"
  "/root/repo/tests/core_polygraph_test.cpp" "tests/CMakeFiles/bp_tests.dir/core_polygraph_test.cpp.o" "gcc" "tests/CMakeFiles/bp_tests.dir/core_polygraph_test.cpp.o.d"
  "/root/repo/tests/core_preprocessing_test.cpp" "tests/CMakeFiles/bp_tests.dir/core_preprocessing_test.cpp.o" "gcc" "tests/CMakeFiles/bp_tests.dir/core_preprocessing_test.cpp.o.d"
  "/root/repo/tests/core_risk_test.cpp" "tests/CMakeFiles/bp_tests.dir/core_risk_test.cpp.o" "gcc" "tests/CMakeFiles/bp_tests.dir/core_risk_test.cpp.o.d"
  "/root/repo/tests/fraudsim_test.cpp" "tests/CMakeFiles/bp_tests.dir/fraudsim_test.cpp.o" "gcc" "tests/CMakeFiles/bp_tests.dir/fraudsim_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/bp_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/bp_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/ml_iforest_metrics_test.cpp" "tests/CMakeFiles/bp_tests.dir/ml_iforest_metrics_test.cpp.o" "gcc" "tests/CMakeFiles/bp_tests.dir/ml_iforest_metrics_test.cpp.o.d"
  "/root/repo/tests/ml_kmeans_test.cpp" "tests/CMakeFiles/bp_tests.dir/ml_kmeans_test.cpp.o" "gcc" "tests/CMakeFiles/bp_tests.dir/ml_kmeans_test.cpp.o.d"
  "/root/repo/tests/ml_matrix_test.cpp" "tests/CMakeFiles/bp_tests.dir/ml_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/bp_tests.dir/ml_matrix_test.cpp.o.d"
  "/root/repo/tests/ml_scaler_pca_test.cpp" "tests/CMakeFiles/bp_tests.dir/ml_scaler_pca_test.cpp.o" "gcc" "tests/CMakeFiles/bp_tests.dir/ml_scaler_pca_test.cpp.o.d"
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/bp_tests.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/bp_tests.dir/stats_test.cpp.o.d"
  "/root/repo/tests/traffic_test.cpp" "tests/CMakeFiles/bp_tests.dir/traffic_test.cpp.o" "gcc" "tests/CMakeFiles/bp_tests.dir/traffic_test.cpp.o.d"
  "/root/repo/tests/ua_test.cpp" "tests/CMakeFiles/bp_tests.dir/ua_test.cpp.o" "gcc" "tests/CMakeFiles/bp_tests.dir/ua_test.cpp.o.d"
  "/root/repo/tests/util_date_table_test.cpp" "tests/CMakeFiles/bp_tests.dir/util_date_table_test.cpp.o" "gcc" "tests/CMakeFiles/bp_tests.dir/util_date_table_test.cpp.o.d"
  "/root/repo/tests/util_rng_test.cpp" "tests/CMakeFiles/bp_tests.dir/util_rng_test.cpp.o" "gcc" "tests/CMakeFiles/bp_tests.dir/util_rng_test.cpp.o.d"
  "/root/repo/tests/util_strings_csv_test.cpp" "tests/CMakeFiles/bp_tests.dir/util_strings_csv_test.cpp.o" "gcc" "tests/CMakeFiles/bp_tests.dir/util_strings_csv_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/bp_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/fraudsim/CMakeFiles/bp_fraudsim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/bp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/bp_browser.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/bp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/ua/CMakeFiles/bp_ua.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
