
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table4_realworld.cpp" "bench/CMakeFiles/bench_table4_realworld.dir/bench_table4_realworld.cpp.o" "gcc" "bench/CMakeFiles/bench_table4_realworld.dir/bench_table4_realworld.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bp_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/bp_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/fraudsim/CMakeFiles/bp_fraudsim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/bp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/bp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/bp_browser.dir/DependInfo.cmake"
  "/root/repo/build/src/ua/CMakeFiles/bp_ua.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
