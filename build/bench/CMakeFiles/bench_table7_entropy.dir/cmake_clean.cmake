file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_entropy.dir/bench_table7_entropy.cpp.o"
  "CMakeFiles/bench_table7_entropy.dir/bench_table7_entropy.cpp.o.d"
  "bench_table7_entropy"
  "bench_table7_entropy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
