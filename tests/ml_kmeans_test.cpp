// Tests for k-means, the WCSS utilities and the elbow reading.
#include <gtest/gtest.h>

#include <set>

#include "ml/kmeans.h"
#include "util/rng.h"

namespace bp::ml {
namespace {

// Three well-separated Gaussian blobs in 2D.
Matrix three_blobs(std::size_t per_blob, std::uint64_t seed) {
  bp::util::Rng rng(seed);
  const double centers[3][2] = {{0, 0}, {20, 0}, {0, 20}};
  Matrix data(per_blob * 3, 2);
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      const std::size_t row = b * per_blob + i;
      data(row, 0) = rng.normal(centers[b][0], 0.5);
      data(row, 1) = rng.normal(centers[b][1], 0.5);
    }
  }
  return data;
}

TEST(KMeans, RecoversSeparableBlobs) {
  const Matrix data = three_blobs(100, 1);
  KMeansConfig config;
  config.k = 3;
  KMeans model(config);
  model.fit(data);

  // Every blob is internally consistent and blobs get distinct clusters.
  std::set<std::size_t> blob_clusters;
  for (std::size_t b = 0; b < 3; ++b) {
    const std::size_t cluster = model.labels()[b * 100];
    blob_clusters.insert(cluster);
    for (std::size_t i = 0; i < 100; ++i) {
      EXPECT_EQ(model.labels()[b * 100 + i], cluster);
    }
  }
  EXPECT_EQ(blob_clusters.size(), 3u);
}

TEST(KMeans, DeterministicGivenSeed) {
  const Matrix data = three_blobs(50, 2);
  KMeansConfig config;
  config.k = 3;
  config.seed = 99;
  KMeans a(config);
  KMeans b(config);
  a.fit(data);
  b.fit(data);
  EXPECT_EQ(a.labels(), b.labels());
  EXPECT_DOUBLE_EQ(a.inertia(), b.inertia());
}

TEST(KMeans, PredictMatchesTrainingLabels) {
  const Matrix data = three_blobs(60, 3);
  KMeansConfig config;
  config.k = 3;
  KMeans model(config);
  model.fit(data);
  const auto predicted = model.predict(data);
  EXPECT_EQ(predicted, model.labels());
}

TEST(KMeans, PredictOneNearestCentroid) {
  const Matrix data = three_blobs(60, 4);
  KMeansConfig config;
  config.k = 3;
  KMeans model(config);
  model.fit(data);
  const double near_origin[] = {0.1, -0.2};
  const std::size_t cluster = model.predict_one(near_origin);
  EXPECT_EQ(cluster, model.labels()[0]);  // blob 0 sits at the origin
}

TEST(KMeans, InertiaIsSumOfSquaredDistances) {
  const Matrix data = Matrix::from_rows({{0.0}, {2.0}, {10.0}, {12.0}});
  KMeansConfig config;
  config.k = 2;
  KMeans model(config);
  model.fit(data);
  // Optimal: centroids at 1 and 11, inertia = 4 * 1.
  EXPECT_NEAR(model.inertia(), 4.0, 1e-9);
}

TEST(KMeans, SingletonClustersWhenKEqualsN) {
  const Matrix data = Matrix::from_rows({{0.0}, {5.0}, {9.0}});
  KMeansConfig config;
  config.k = 3;
  KMeans model(config);
  model.fit(data);
  EXPECT_NEAR(model.inertia(), 0.0, 1e-12);
  std::set<std::size_t> distinct(model.labels().begin(), model.labels().end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(KMeans, HandlesDuplicatePoints) {
  // More clusters than distinct points: empty-cluster repair must not
  // loop or crash, and inertia lands at zero.
  Matrix data(10, 1, 7.0);
  for (std::size_t i = 5; i < 10; ++i) data(i, 0) = 3.0;
  KMeansConfig config;
  config.k = 4;
  KMeans model(config);
  model.fit(data);
  EXPECT_LE(model.inertia(), 1e-9);
}

TEST(KMeans, MoreRestartsNeverWorse) {
  const Matrix data = three_blobs(40, 5);
  KMeansConfig one;
  one.k = 3;
  one.n_init = 1;
  KMeansConfig many = one;
  many.n_init = 8;
  KMeans a(one);
  KMeans b(many);
  a.fit(data);
  b.fit(data);
  EXPECT_LE(b.inertia(), a.inertia() + 1e-9);
}

TEST(KMeans, FromCentroidsPredicts) {
  Matrix centroids = Matrix::from_rows({{0.0}, {10.0}});
  const KMeans model = KMeans::from_centroids(std::move(centroids));
  const double pt_a[] = {1.0};
  const double pt_b[] = {9.0};
  EXPECT_EQ(model.predict_one(pt_a), 0u);
  EXPECT_EQ(model.predict_one(pt_b), 1u);
}

TEST(WcssCurve, NonIncreasingInK) {
  const Matrix data = three_blobs(50, 6);
  const auto wcss = wcss_curve(data, 1, 8);
  ASSERT_EQ(wcss.size(), 8u);
  for (std::size_t i = 1; i < wcss.size(); ++i) {
    // Independent restarts can wobble slightly; allow 5% slack.
    EXPECT_LE(wcss[i], wcss[i - 1] * 1.05);
  }
}

TEST(WcssCurve, CollapsesAtTrueK) {
  const Matrix data = three_blobs(50, 7);
  const auto wcss = wcss_curve(data, 1, 6);
  // Going 2 -> 3 must be a huge drop; 3 -> 4 a small one.
  const double drop_to_3 = (wcss[1] - wcss[2]) / wcss[1];
  const double drop_to_4 = (wcss[2] - wcss[3]) / wcss[2];
  EXPECT_GT(drop_to_3, 0.8);
  EXPECT_LT(drop_to_4, 0.5);
}

TEST(RelativeWcssDrops, KnownValues) {
  const auto drops = relative_wcss_drops({100.0, 50.0, 40.0});
  ASSERT_EQ(drops.size(), 2u);
  EXPECT_DOUBLE_EQ(drops[0], 0.5);
  EXPECT_DOUBLE_EQ(drops[1], 0.2);
}

TEST(ElbowK, PicksFirstLatePeak) {
  // wcss indexed from k=1; drops: k=2:50%, k=3:10%, ..., peak at k=10.
  std::vector<double> wcss = {100, 50, 45, 42, 40, 38, 36, 34, 32, 16, 15};
  EXPECT_EQ(elbow_k(wcss, 1, /*min_k=*/9, /*threshold=*/0.3), 10u);
}

TEST(ElbowK, FallsBackToLargestLateDrop) {
  // No drop clears the threshold: the largest late-stage one wins.
  std::vector<double> wcss = {100, 95, 90, 85, 80, 70, 68, 66, 64, 62, 60};
  const std::size_t k = elbow_k(wcss, 1, 5, 0.5);
  EXPECT_EQ(k, 6u);  // 80 -> 70 is the biggest relative drop at k >= 5
}

}  // namespace
}  // namespace bp::ml
