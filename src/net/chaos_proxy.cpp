#include "net/chaos_proxy.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/socket_ops.h"
#include "util/rng.h"

namespace bp::net {

namespace {

// The proxy's own plumbing stays off the fault-injected seam
// (net/socket_ops.h): the proxy *is* the fault injector, and faults in
// its forwarding would be indistinguishable from the ones it injects
// on purpose.
bool raw_send_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::string_view chaos_action_name(ChaosAction a) noexcept {
  switch (a) {
    case ChaosAction::kForward: return "forward";
    case ChaosAction::kDelay: return "delay";
    case ChaosAction::kTruncate: return "truncate";
    case ChaosAction::kCorrupt: return "corrupt";
    case ChaosAction::kReset: return "reset";
  }
  return "unknown";
}

ChaosProxy::ChaosProxy(ChaosProxyConfig config) : config_(std::move(config)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    error_ = "inet_pton: invalid bind address '" + config_.bind_address + "'";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    error_ = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  if (::listen(listen_fd_, 128) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { acceptor_loop(); });
}

ChaosProxy::~ChaosProxy() { stop(); }

std::string ChaosProxy::error() const {
  std::lock_guard lock(error_mutex_);
  return error_;
}

ChaosProxyStats ChaosProxy::stats() const {
  ChaosProxyStats out;
  out.connections = connections_.load(std::memory_order_relaxed);
  out.chunks = chunks_.load(std::memory_order_relaxed);
  out.bytes = bytes_.load(std::memory_order_relaxed);
  out.delays = delays_.load(std::memory_order_relaxed);
  out.truncates = truncates_.load(std::memory_order_relaxed);
  out.corrupts = corrupts_.load(std::memory_order_relaxed);
  out.resets = resets_.load(std::memory_order_relaxed);
  return out;
}

ChaosAction ChaosProxy::decide(std::uint64_t stream,
                               std::uint64_t chunk) const noexcept {
  const std::uint64_t h = util::mix64(
      config_.seed ^ util::mix64(stream * 0x9E3779B97F4A7C15ULL + chunk + 1));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  double threshold = config_.reset_probability;
  if (u < threshold) return ChaosAction::kReset;
  threshold += config_.truncate_probability;
  if (u < threshold) return ChaosAction::kTruncate;
  threshold += config_.corrupt_probability;
  if (u < threshold) return ChaosAction::kCorrupt;
  threshold += config_.delay_probability;
  if (u < threshold) return ChaosAction::kDelay;
  return ChaosAction::kForward;
}

int ChaosProxy::connect_upstream() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.upstream_port);
  if (::inet_pton(AF_INET, config_.upstream_host.c_str(), &addr.sin_addr) !=
          1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void ChaosProxy::acceptor_loop() {
  std::uint64_t next_index = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    const int upstream = connect_upstream();
    if (upstream < 0) {
      // No upstream: the client sees an immediate close — to it, a
      // transport error like any other.
      ::close(client);
      continue;
    }
    sockops::set_recv_timeout(client, config_.io_timeout);
    sockops::set_recv_timeout(upstream, config_.io_timeout);

    auto pair = std::make_shared<Pair>();
    pair->client_fd = client;
    pair->upstream_fd = upstream;
    pair->index = next_index++;
    connections_.fetch_add(1, std::memory_order_relaxed);

    std::lock_guard lock(relay_mutex_);
    pairs_.push_back(pair);
    relays_.emplace_back([this, pair] { relay(pair); });
  }
}

void ChaosProxy::relay(std::shared_ptr<Pair> pair) {
  std::thread request_pump([this, pair] {
    pump(*pair, pair->client_fd, pair->upstream_fd, pair->index * 2,
         config_.fault_client_to_upstream);
  });
  pump(*pair, pair->upstream_fd, pair->client_fd, pair->index * 2 + 1,
       config_.fault_upstream_to_client);
  request_pump.join();
  // Both pumps have exited; only now is it safe to release the
  // descriptors (a pair flagged for reset closes with SO_LINGER zero
  // already set, so these sends RST).
  ::close(pair->client_fd);
  ::close(pair->upstream_fd);
  std::lock_guard lock(relay_mutex_);
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    if (pairs_[i] == pair) {
      pairs_.erase(pairs_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
}

void ChaosProxy::kill_pair(Pair& pair, bool rst) {
  if (pair.killed.exchange(true, std::memory_order_acq_rel)) return;
  if (rst) {
    // SO_LINGER zero makes the eventual close() abort with RST.
    // shutdown(SHUT_RD) unblocks both pumps without putting a FIN on
    // the wire first (which would soften the reset into a close).
    linger lg{};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ::setsockopt(pair.client_fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::setsockopt(pair.upstream_fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::shutdown(pair.client_fd, SHUT_RD);
    ::shutdown(pair.upstream_fd, SHUT_RD);
  } else {
    ::shutdown(pair.client_fd, SHUT_RDWR);
    ::shutdown(pair.upstream_fd, SHUT_RDWR);
  }
}

void ChaosProxy::pump(Pair& pair, int from_fd, int to_fd, std::uint64_t stream,
                      bool fault_side) {
  char buf[4096];
  std::uint64_t chunk = 0;
  while (true) {
    const ssize_t n = ::recv(from_fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (pair.killed.load(std::memory_order_acquire)) return;
    if (n <= 0) break;  // EOF, error, or idle timeout: direction done
    chunks_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(static_cast<std::uint64_t>(n),
                     std::memory_order_relaxed);

    const ChaosAction action =
        fault_side ? decide(stream, chunk) : ChaosAction::kForward;
    ++chunk;
    std::size_t send_len = static_cast<std::size_t>(n);
    switch (action) {
      case ChaosAction::kReset:
        resets_.fetch_add(1, std::memory_order_relaxed);
        kill_pair(pair, /*rst=*/true);
        return;
      case ChaosAction::kTruncate:
        truncates_.fetch_add(1, std::memory_order_relaxed);
        send_len /= 2;
        if (send_len > 0) raw_send_all(to_fd, buf, send_len);
        kill_pair(pair, /*rst=*/false);
        return;
      case ChaosAction::kCorrupt: {
        corrupts_.fetch_add(1, std::memory_order_relaxed);
        // Flip the top bit of one deterministic byte.  Everything this
        // proxy carries (HTTP heads, bp1 wire frames) is ASCII, so the
        // corruption is always *detectable* — a flipped byte can never
        // alias a different valid frame, it lands outside the grammar.
        const std::uint64_t h =
            util::mix64(util::mix64(config_.seed ^ stream) + chunk);
        buf[h % send_len] ^= static_cast<char>(0x80);
        break;
      }
      case ChaosAction::kDelay:
        delays_.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(config_.delay);
        if (pair.killed.load(std::memory_order_acquire)) return;
        break;
      case ChaosAction::kForward:
        break;
    }
    if (!raw_send_all(to_fd, buf, send_len)) break;
  }
  if (pair.killed.load(std::memory_order_acquire)) return;
  // Half-close: propagate this direction's EOF so the peer can finish
  // what it was saying on the other direction.
  ::shutdown(to_fd, SHUT_WR);
  ::shutdown(from_fd, SHUT_RD);
}

void ChaosProxy::stop() {
  std::lock_guard stop_lock(stop_mutex_);
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();

  std::vector<std::thread> relays;
  {
    std::lock_guard lock(relay_mutex_);
    for (const std::shared_ptr<Pair>& pair : pairs_) {
      kill_pair(*pair, /*rst=*/false);
    }
    relays.swap(relays_);
  }
  for (std::thread& t : relays) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

}  // namespace bp::net
