# Empty dependencies file for bench_table10_sensitivity_k.
# This may be replaced when dependencies are built.
