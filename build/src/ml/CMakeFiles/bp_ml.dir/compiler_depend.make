# Empty compiler generated dependencies file for bp_ml.
# This may be replaced when dependencies are built.
