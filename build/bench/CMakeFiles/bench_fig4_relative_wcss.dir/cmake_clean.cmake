file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_relative_wcss.dir/bench_fig4_relative_wcss.cpp.o"
  "CMakeFiles/bench_fig4_relative_wcss.dir/bench_fig4_relative_wcss.cpp.o.d"
  "bench_fig4_relative_wcss"
  "bench_fig4_relative_wcss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_relative_wcss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
