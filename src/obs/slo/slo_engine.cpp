#include "obs/slo/slo_engine.h"

#include <algorithm>
#include <cstdio>

namespace bp::obs::slo {

std::string_view alert_state_name(AlertState state) noexcept {
  switch (state) {
    case AlertState::kOk: return "kOk";
    case AlertState::kWarn: return "kWarn";
    case AlertState::kPage: return "kPage";
  }
  return "?";
}

namespace {

AlertState worse(AlertState a, AlertState b) noexcept {
  return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b) ? a : b;
}

// bad/total fraction over one lookback; 0 when nothing happened (no
// traffic is not an SLO breach).
double fraction(const TimeSeriesWindow& window, const SloRule& rule,
                std::int64_t lookback_ms) {
  const double total = window.delta(rule.denominator, lookback_ms);
  if (total <= 0.0) return 0.0;
  return window.delta(rule.numerator, lookback_ms) / total;
}

}  // namespace

SloEngine::SloEngine(std::vector<SloRule> rules) {
  rules_.reserve(rules.size());
  for (SloRule& rule : rules) {
    RuleState rs;
    rs.rule = std::move(rule);
    rules_.push_back(std::move(rs));
  }
}

AlertState SloEngine::indicate(const TimeSeriesWindow& window,
                               RuleState& rs) const {
  const SloRule& rule = rs.rule;
  switch (rule.kind) {
    case SloRule::Kind::kBurnRate: {
      const double budget = std::max(rule.budget, 1e-12);
      rs.short_value = fraction(window, rule, rule.short_window_ms) / budget;
      rs.long_value = fraction(window, rule, rule.long_window_ms) / budget;
      // Both windows must burn: the short one proves the breach is
      // current, the long one proves it is sustained.
      const double confirmed = std::min(rs.short_value, rs.long_value);
      if (confirmed >= rule.page_burn) return AlertState::kPage;
      if (confirmed >= rule.warn_burn) return AlertState::kWarn;
      return AlertState::kOk;
    }
    case SloRule::Kind::kErrorRate: {
      rs.short_value = fraction(window, rule, rule.short_window_ms);
      rs.long_value = 0.0;
      if (rule.page_threshold > 0.0 && rs.short_value >= rule.page_threshold) {
        return AlertState::kPage;
      }
      if (rule.warn_threshold > 0.0 && rs.short_value >= rule.warn_threshold) {
        return AlertState::kWarn;
      }
      return AlertState::kOk;
    }
    case SloRule::Kind::kCeiling: {
      rs.short_value = window.latest(rule.numerator);
      rs.long_value = 0.0;
      if (rule.page_threshold > 0.0 && rs.short_value >= rule.page_threshold) {
        return AlertState::kPage;
      }
      if (rule.warn_threshold > 0.0 && rs.short_value >= rule.warn_threshold) {
        return AlertState::kWarn;
      }
      return AlertState::kOk;
    }
  }
  return AlertState::kOk;
}

AlertState SloEngine::evaluate(const TimeSeriesWindow& window,
                               std::int64_t now_ms) {
  std::lock_guard lock(mutex_);
  AlertState worst = AlertState::kOk;
  for (RuleState& rs : rules_) {
    rs.indicated = indicate(window, rs);
    const AlertState before = rs.held;
    if (rs.indicated > rs.held) {
      // Escalate immediately: a page-level breach must not wait out a
      // damping window.
      rs.held = rs.indicated;
      rs.quiet_ticks = 0;
    } else if (rs.indicated < rs.held) {
      // De-escalate only after clear_ticks consecutive quiet ticks —
      // then drop straight to the indicated level (a rule that went
      // fully quiet clears to kOk, not through kWarn).
      if (++rs.quiet_ticks >= std::max(rs.rule.clear_ticks, 1)) {
        rs.held = rs.indicated;
        rs.quiet_ticks = 0;
      }
    } else {
      rs.quiet_ticks = 0;
    }
    if (rs.held != before) {
      transitions_.push_back({now_ms, rs.rule.name, before, rs.held});
    }
    worst = worse(worst, rs.held);
  }
  ++evaluations_;
  return worst;
}

AlertState SloEngine::worst_state(bool gating_only) const {
  std::lock_guard lock(mutex_);
  AlertState worst = AlertState::kOk;
  for (const RuleState& rs : rules_) {
    if (gating_only && !rs.rule.gate_readiness) continue;
    worst = worse(worst, rs.held);
  }
  return worst;
}

std::vector<RuleStatus> SloEngine::statuses() const {
  std::lock_guard lock(mutex_);
  std::vector<RuleStatus> out;
  out.reserve(rules_.size());
  for (const RuleState& rs : rules_) {
    RuleStatus status;
    status.name = rs.rule.name;
    status.state = rs.held;
    status.indicated = rs.indicated;
    status.short_value = rs.short_value;
    status.long_value = rs.long_value;
    status.quiet_ticks = rs.quiet_ticks;
    status.gate_readiness = rs.rule.gate_readiness;
    out.push_back(std::move(status));
  }
  return out;
}

std::vector<AlertTransition> SloEngine::transitions() const {
  std::lock_guard lock(mutex_);
  return transitions_;
}

std::uint64_t SloEngine::evaluations() const {
  std::lock_guard lock(mutex_);
  return evaluations_;
}

std::string SloEngine::render_transitions() const {
  std::lock_guard lock(mutex_);
  std::string out;
  for (const AlertTransition& t : transitions_) {
    out += "t=" + std::to_string(t.at_ms) + " rule=" + t.rule + " " +
           std::string(alert_state_name(t.from)) + "->" +
           std::string(alert_state_name(t.to)) + "\n";
  }
  return out;
}

std::string SloEngine::render_statuses() const {
  std::lock_guard lock(mutex_);
  std::string out;
  for (const RuleState& rs : rules_) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-24s %-5s short=%.4g long=%.4g quiet=%d%s\n",
                  rs.rule.name.c_str(),
                  std::string(alert_state_name(rs.held)).c_str(),
                  rs.short_value, rs.long_value, rs.quiet_ticks,
                  rs.rule.gate_readiness ? " [gates readiness]" : "");
    out += line;
  }
  return out;
}

}  // namespace bp::obs::slo
