#include "ml/isolation_forest.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "util/parallel.h"

namespace bp::ml {

namespace {

// Row-blocking grain for batch scoring; fixed for thread-count-invariant
// decomposition (per-row scores are independent, so this only bounds
// dispatch overhead).
constexpr std::size_t kScoreGrain = 1024;

}  // namespace

double IsolationForest::average_path_length(std::size_t n) noexcept {
  if (n <= 1) return 0.0;
  if (n == 2) return 1.0;
  const double nd = static_cast<double>(n);
  constexpr double kEulerMascheroni = 0.5772156649015329;
  const double harmonic = std::log(nd - 1.0) + kEulerMascheroni;
  return 2.0 * harmonic - 2.0 * (nd - 1.0) / nd;
}

IsolationForest::Tree IsolationForest::build_tree(
    const Matrix& data, std::vector<std::size_t>& indices,
    bp::util::Rng& rng) const {
  Tree tree;
  const std::size_t d = data.cols();
  const int height_limit = static_cast<int>(
      std::ceil(std::log2(std::max<double>(2.0, static_cast<double>(indices.size())))));

  struct Frame {
    std::size_t begin;
    std::size_t end;
    int depth;
    std::int32_t node;
  };

  tree.nodes.emplace_back();
  std::vector<Frame> stack{{0, indices.size(), 0, 0}};

  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    Node& node = tree.nodes[static_cast<std::size_t>(frame.node)];
    const std::size_t count = frame.end - frame.begin;

    if (count <= 1 || frame.depth >= height_limit) {
      node.size = count;
      continue;
    }

    // Pick a split feature with spread; try a few features before giving
    // up (constant subsets become leaves).
    std::size_t feature = Node::npos;
    double lo = 0.0;
    double hi = 0.0;
    for (std::size_t attempt = 0; attempt < d; ++attempt) {
      const std::size_t f = static_cast<std::size_t>(rng.below(d));
      lo = hi = data(indices[frame.begin], f);
      for (std::size_t i = frame.begin + 1; i < frame.end; ++i) {
        const double v = data(indices[i], f);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      if (hi > lo) {
        feature = f;
        break;
      }
    }
    if (feature == Node::npos) {
      node.size = count;
      continue;
    }

    const double threshold = rng.uniform(lo, hi);
    const auto mid_it = std::partition(
        indices.begin() + static_cast<std::ptrdiff_t>(frame.begin),
        indices.begin() + static_cast<std::ptrdiff_t>(frame.end),
        [&](std::size_t idx) { return data(idx, feature) < threshold; });
    std::size_t mid =
        static_cast<std::size_t>(mid_it - indices.begin());
    // Degenerate partitions can happen when threshold == lo; force a
    // non-empty split to guarantee progress.
    if (mid == frame.begin) ++mid;
    if (mid == frame.end) --mid;

    node.feature = feature;
    node.threshold = threshold;
    node.left = static_cast<std::int32_t>(tree.nodes.size());
    node.right = node.left + 1;
    const std::int32_t left = node.left;
    const std::int32_t right = node.right;
    tree.nodes.emplace_back();
    tree.nodes.emplace_back();
    stack.push_back({frame.begin, mid, frame.depth + 1, left});
    stack.push_back({mid, frame.end, frame.depth + 1, right});
  }
  return tree;
}

double IsolationForest::Tree::path_length(
    std::span<const double> point) const {
  std::size_t node_idx = 0;
  double depth = 0.0;
  for (;;) {
    const Node& node = nodes[node_idx];
    if (node.feature == Node::npos) {
      return depth + IsolationForest::average_path_length(node.size);
    }
    depth += 1.0;
    node_idx = point[node.feature] < node.threshold
                   ? static_cast<std::size_t>(node.left)
                   : static_cast<std::size_t>(node.right);
  }
}

void IsolationForest::fit(const Matrix& data) {
  assert(data.rows() > 0);
  const bp::util::Rng rng(config_.seed);
  const std::size_t sample =
      std::min(config_.max_samples, data.rows());
  c_norm_ = std::max(average_path_length(sample), 1e-9);

  // Trees are embarrassingly parallel: tree t draws from the pre-split
  // stream rng.split(t), which is a pure function of (seed, t), so the
  // forest is identical no matter which thread builds which tree.
  trees_.clear();
  trees_.resize(config_.n_trees);
  bp::util::parallel_for(
      std::size_t{0}, config_.n_trees, 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t t = begin; t < end; ++t) {
          bp::util::Rng tree_rng = rng.split(t);
          auto indices = tree_rng.sample_indices(data.rows(), sample);
          trees_[t] = build_tree(data, indices, tree_rng);
        }
      });
}

double IsolationForest::score_one(std::span<const double> point) const {
  assert(fitted());
  double total = 0.0;
  for (const Tree& tree : trees_) total += tree.path_length(point);
  const double mean_depth = total / static_cast<double>(trees_.size());
  return std::pow(2.0, -mean_depth / c_norm_);
}

std::vector<double> IsolationForest::score(const Matrix& data) const {
  std::vector<double> out(data.rows());
  bp::util::parallel_for(
      std::size_t{0}, data.rows(), kScoreGrain,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          out[i] = score_one(data.row(i));
        }
      });
  return out;
}

std::vector<bool> IsolationForest::inlier_mask(const Matrix& data,
                                               double contamination) const {
  const std::vector<double> scores = score(data);
  const std::size_t n = scores.size();
  std::vector<bool> keep(n, true);
  if (contamination <= 0.0 || n == 0) return keep;

  const std::size_t drop = std::min<std::size_t>(
      n, static_cast<std::size_t>(
             std::ceil(contamination * static_cast<double>(n))));
  if (drop == 0) return keep;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(drop) - 1,
                   order.end(), [&](std::size_t a, std::size_t b) {
                     return scores[a] > scores[b];
                   });
  for (std::size_t i = 0; i < drop; ++i) keep[order[i]] = false;
  return keep;
}

}  // namespace bp::ml
