// Appendix-5's preparation of fine-grained JSON fingerprints for
// clustering:
//
//   "for nested objects within the JSON, we flattened the data by
//    creating separate columns for each key.  Then, we converted all
//    values into numerical formats: numeric values were left unchanged,
//    boolean values were mapped to 0 and 1, and strings were encoded as
//    numerical categories.  Any missing values were assigned a default
//    value of -1.  Subsequently, columns with unique values across all
//    data points were excluded.  Additionally, for ClientJS ... features
//    directly extracted from the user-agent string ... were excluded."
#pragma once

#include <string>
#include <vector>

#include "baseline/profile.h"
#include "ml/matrix.h"

namespace bp::baseline {

struct EncodeOptions {
  // Column-path prefixes to exclude (ClientJS's UA-derived features).
  std::vector<std::string> exclude_prefixes;
  // Drop columns where every row has a distinct value (hashes and other
  // identifiers — useless and dangerous for clustering).
  bool drop_all_unique = true;
  // Drop constant columns (no clustering signal).
  bool drop_constant = true;
};

struct EncodedDataset {
  ml::Matrix features;                    // rows x kept-columns
  std::vector<std::string> column_names;  // kept columns, in order
  std::size_t columns_before_filtering = 0;
  std::size_t dropped_all_unique = 0;
  std::size_t dropped_constant = 0;
  std::size_t dropped_excluded = 0;
};

EncodedDataset encode_profiles(const std::vector<ProfileValue>& profiles,
                               EncodeOptions options = {});

}  // namespace bp::baseline
