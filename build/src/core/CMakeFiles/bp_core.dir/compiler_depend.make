# Empty compiler generated dependencies file for bp_core.
# This may be replaced when dependencies are built.
