// Determinism across thread counts — the hard requirement of the
// parallel training pipeline: the SAME seed must produce bit-identical
// models, labels, and generated traffic whether the pool runs 1, 2, or
// 8 threads.  Every parallel region decomposes work by a fixed grain
// (never by thread count) and merges partials in chunk order, so these
// suites compare serialized bytes with plain string equality.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/model_io.h"
#include "core/polygraph.h"
#include "ml/isolation_forest.h"
#include "ml/kmeans.h"
#include "traffic/session_generator.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace bp {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

// Restores the default pool size so thread-count experiments cannot
// leak into unrelated suites.
class TrainingDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { util::set_parallel_threads(0); }
};

traffic::Dataset make_dataset(std::size_t n_sessions) {
  traffic::TrafficConfig config;
  config.n_sessions = n_sessions;
  traffic::SessionGenerator gen(config);
  return gen.generate(traffic::experiment_feature_indices());
}

std::string record_digest(const traffic::SessionRecord& r) {
  std::string out = r.session_id;
  out += '|';
  out += r.user_agent;
  out += '|';
  for (std::int32_t f : r.features) {
    out += std::to_string(f);
    out += ',';
  }
  out += r.untrusted_ip ? '1' : '0';
  out += r.untrusted_cookie ? '1' : '0';
  out += r.ato ? '1' : '0';
  return out;
}

TEST_F(TrainingDeterminismTest, GeneratedTrafficIdenticalAcrossThreadCounts) {
  // 3 shards' worth plus a partial tail shard.
  const std::size_t n = traffic::SessionGenerator::kGenerateShard * 3 + 257;
  std::vector<std::string> digests;
  for (std::size_t threads : kThreadCounts) {
    util::set_parallel_threads(threads);
    const traffic::Dataset data = make_dataset(n);
    ASSERT_EQ(data.size(), n);
    std::string digest;
    for (const auto& r : data.records()) {
      digest += record_digest(r);
      digest += '\n';
    }
    digests.push_back(std::move(digest));
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
}

TEST_F(TrainingDeterminismTest, SerializedModelBytesIdenticalAcrossThreadCounts) {
  // Small but structurally complete corpus: all vendors, privacy
  // browsers, fraud, rare labels.
  const std::size_t n = 12'000;
  std::vector<std::string> serialized;
  std::vector<std::vector<std::size_t>> labels;
  std::vector<core::TrainingSummary> summaries;
  for (std::size_t threads : kThreadCounts) {
    util::set_parallel_threads(threads);
    const traffic::Dataset data = make_dataset(n);
    core::Polygraph model;
    const ml::Matrix features =
        data.feature_matrix(model.config().feature_indices);
    std::vector<ua::UserAgent> uas;
    uas.reserve(data.size());
    for (const auto& r : data.records()) uas.push_back(r.claimed);
    summaries.push_back(model.train(features, uas));
    serialized.push_back(core::serialize_model(model));
    labels.push_back(model.kmeans().labels());
  }
  // Bit-identical model bytes: scaler moments, PCA basis, centroids,
  // and the UA <-> cluster table all round through the same text.
  EXPECT_EQ(serialized[0], serialized[1]) << "1 vs 2 threads";
  EXPECT_EQ(serialized[0], serialized[2]) << "1 vs 8 threads";
  // Identical cluster labels, row by row.
  ASSERT_EQ(labels[0].size(), labels[1].size());
  ASSERT_EQ(labels[0].size(), labels[2].size());
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], labels[2]);
  // And the summary statistics that derive from them.
  for (std::size_t i = 1; i < summaries.size(); ++i) {
    EXPECT_EQ(summaries[0].rows_outliers_removed,
              summaries[i].rows_outliers_removed);
    EXPECT_EQ(summaries[0].wcss, summaries[i].wcss);
    EXPECT_EQ(summaries[0].clustering_accuracy,
              summaries[i].clustering_accuracy);
    EXPECT_EQ(summaries[0].labels_realigned, summaries[i].labels_realigned);
  }
}

TEST_F(TrainingDeterminismTest, IsolationForestScoresIdenticalAcrossThreads) {
  util::set_parallel_threads(1);
  const traffic::Dataset data = make_dataset(4'000);
  const ml::Matrix features =
      data.feature_matrix(core::PolygraphConfig::production().feature_indices);

  std::vector<std::vector<double>> scores;
  for (std::size_t threads : kThreadCounts) {
    util::set_parallel_threads(threads);
    ml::IsolationForest forest;
    forest.fit(features);
    scores.push_back(forest.score(features));
  }
  EXPECT_EQ(scores[0], scores[1]);
  EXPECT_EQ(scores[0], scores[2]);
}

TEST_F(TrainingDeterminismTest, TrainingTimingsArePopulated) {
  const traffic::Dataset data = make_dataset(6'000);
  core::Polygraph model;
  const ml::Matrix features =
      data.feature_matrix(model.config().feature_indices);
  std::vector<ua::UserAgent> uas;
  for (const auto& r : data.records()) uas.push_back(r.claimed);
  const core::TrainingSummary summary = model.train(features, uas);
  EXPECT_GT(summary.timings.total, 0.0);
  const double stage_sum = summary.timings.scale + summary.timings.filter +
                           summary.timings.pca + summary.timings.kmeans +
                           summary.timings.table;
  EXPECT_GT(stage_sum, 0.0);
  EXPECT_LE(stage_sum, summary.timings.total * 1.01);
}

}  // namespace
}  // namespace bp
