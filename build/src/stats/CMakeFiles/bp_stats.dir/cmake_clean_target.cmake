file(REMOVE_RECURSE
  "libbp_stats.a"
)
