file(REMOVE_RECURSE
  "CMakeFiles/fraud_detection_service.dir/fraud_detection_service.cpp.o"
  "CMakeFiles/fraud_detection_service.dir/fraud_detection_service.cpp.o.d"
  "fraud_detection_service"
  "fraud_detection_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fraud_detection_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
