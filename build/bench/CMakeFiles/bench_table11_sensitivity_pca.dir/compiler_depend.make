# Empty compiler generated dependencies file for bench_table11_sensitivity_pca.
# This may be replaced when dependencies are built.
