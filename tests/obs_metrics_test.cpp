// Tests for the observability plane: MetricsRegistry instruments and
// exporters, the rebased ServeMetrics quantile/budget semantics, and
// the drift / retrain-supervisor registry exports.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string_view>
#include <thread>
#include <vector>

#include "core/drift.h"
#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "serve/retrain_supervisor.h"
#include "serve/serve_metrics.h"
#include "traffic/dataset.h"
#include "util/fault.h"

namespace bp::obs {
namespace {

// ----------------------------- instruments -----------------------------

TEST(ObsMetrics, CounterFoldsAllStripes) {
  MetricsRegistry registry;
  Counter& c = registry.counter("events_total");
  for (std::size_t hint = 0; hint < 2 * Counter::kStripes; ++hint) {
    c.add(1, hint);
  }
  EXPECT_EQ(c.value(), 2 * Counter::kStripes);
}

TEST(ObsMetrics, CounterExactUnderConcurrency) {
  MetricsRegistry registry;
  Counter& c = registry.counter("concurrent_total");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, t] {
      for (int i = 0; i < kPerThread; ++i) c.increment(t);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsMetrics, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("depth");
  g.set(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.add(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.5);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(ObsMetrics, HistogramBucketEdgesAreInclusive) {
  MetricsRegistry registry;
  const std::vector<std::uint64_t> bounds = {10, 100};
  Histogram& h = registry.histogram("latency", bounds);
  // lower_bound semantics: bucket b counts samples <= bounds[b].
  EXPECT_EQ(h.bucket_index(0), 0u);
  EXPECT_EQ(h.bucket_index(10), 0u);
  EXPECT_EQ(h.bucket_index(11), 1u);
  EXPECT_EQ(h.bucket_index(100), 1u);
  EXPECT_EQ(h.bucket_index(101), 2u);  // open-ended last bucket

  h.observe(10);
  h.observe(11, /*stripe_hint=*/5);
  h.observe(5'000);
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 10u + 11u + 5'000u);
}

TEST(ObsMetrics, FindOrCreateReturnsTheSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("shared_total", "first registration");
  Counter& b = registry.counter("shared_total", "ignored duplicate help");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(registry.size(), 1u);
}

// ------------------------------ rendering ------------------------------

TEST(ObsMetrics, RenderPrometheusExposition) {
  MetricsRegistry registry;
  registry.counter("bp_events_total", "events seen").add(7);
  registry.gauge("bp_depth", "queue depth").set(4.0);
  const std::vector<std::uint64_t> bounds = {50, 100};
  Histogram& h = registry.histogram("bp_lat", bounds, "latency");
  h.observe(40);
  h.observe(60);
  h.observe(600);

  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("# HELP bp_events_total events seen\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE bp_events_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("bp_events_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bp_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("bp_depth 4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bp_lat histogram\n"), std::string::npos);
  // Cumulative buckets, as Prometheus requires.
  EXPECT_NE(text.find("bp_lat_bucket{le=\"50\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("bp_lat_bucket{le=\"100\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("bp_lat_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("bp_lat_sum 700\n"), std::string::npos);
  EXPECT_NE(text.find("bp_lat_count 3\n"), std::string::npos);
}

TEST(ObsMetrics, PeriodicDumperFlushesTailOnStop) {
  MetricsRegistry registry;
  Counter& c = registry.counter("bp_tail_total");
  const std::string path = "/tmp/bp_obs_dumper_tail_test.prom";
  std::remove(path.c_str());
  {
    // Period far longer than the test: the only dumps are the
    // immediate one at start and the final flush stop() performs.
    PeriodicDumper dumper(registry, path, std::chrono::minutes(10));
    while (dumper.dumps() == 0) std::this_thread::yield();
    c.add(41);  // the "tail of the last period"
    dumper.stop();
    EXPECT_EQ(dumper.dumps(), 2u);  // startup dump + final flush
    dumper.stop();                  // idempotent: no third dump
    EXPECT_EQ(dumper.dumps(), 2u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const std::string dumped((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  EXPECT_NE(dumped.find("bp_tail_total 41\n"), std::string::npos) << dumped;
  std::remove(path.c_str());
}

TEST(ObsMetrics, PrometheusHelpEscapesBackslashAndNewline) {
  MetricsRegistry registry;
  registry.counter("bp_tricky_total", "line one\nline two \\ backslash")
      .add(1);
  const std::string text = registry.render_prometheus();
  // The exposition stays one physical line per HELP entry: the newline
  // is escaped to "\n" and the backslash to "\\".
  EXPECT_NE(
      text.find("# HELP bp_tricky_total line one\\nline two \\\\ backslash\n"),
      std::string::npos)
      << text;
  EXPECT_EQ(text.find("line one\nline"), std::string::npos);
  // Every line is a comment or a sample: no raw-help line can appear.
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    EXPECT_TRUE(line.empty() || line[0] == '#' ||
                line.substr(0, 3) == "bp_")
        << "unexpected exposition line: " << line;
    pos = eol + 1;
  }
}

TEST(ObsMetrics, ReadValueCoversEveryInstrumentKind) {
  MetricsRegistry registry;
  registry.counter("c_total").add(5);
  registry.gauge("g").set(2.5);
  registry.gauge_callback("cb", [] { return 9.0; });
  const std::vector<std::uint64_t> bounds = {100, 1'000};
  Histogram& h = registry.histogram("h_us", bounds);
  h.observe(50);
  h.observe(100);   // on the bound: not over 100
  h.observe(500);
  h.observe(5'000);

  EXPECT_DOUBLE_EQ(registry.read_value("c_total").value(), 5.0);
  EXPECT_DOUBLE_EQ(registry.read_value("g").value(), 2.5);
  EXPECT_DOUBLE_EQ(registry.read_value("cb").value(), 9.0);
  EXPECT_DOUBLE_EQ(registry.read_value("h_us").value(), 4.0);  // count
  EXPECT_FALSE(registry.read_value("missing").has_value());

  EXPECT_DOUBLE_EQ(registry.read_histogram_over("h_us", 100).value(), 2.0);
  EXPECT_DOUBLE_EQ(registry.read_histogram_over("h_us", 1'000).value(), 1.0);
  EXPECT_FALSE(registry.read_histogram_over("c_total", 100).has_value());
  EXPECT_FALSE(registry.read_histogram_over("missing", 100).has_value());
}

TEST(ObsMetrics, RenderJsonIsDeterministicAndNameOrdered) {
  MetricsRegistry registry;
  registry.counter("zeta_total").add(1);
  registry.counter("alpha_total").add(2);
  registry.gauge("mid_gauge").set(1.5);

  const std::string a = registry.render_json();
  const std::string b = registry.render_json();
  EXPECT_EQ(a, b);
  // std::map ordering: alpha before zeta regardless of insert order.
  EXPECT_LT(a.find("alpha_total"), a.find("zeta_total"));
  EXPECT_NE(a.find("\"alpha_total\": 2"), std::string::npos);
  EXPECT_NE(a.find("\"mid_gauge\": 1.5"), std::string::npos);
}

TEST(ObsMetrics, CallbackGaugeIsFreshAtRenderTime) {
  MetricsRegistry registry;
  double live = 1.0;
  registry.gauge_callback("bp_live", [&live] { return live; }, "live value");
  EXPECT_NE(registry.render_prometheus().find("bp_live 1\n"),
            std::string::npos);
  live = 42.0;  // no re-registration needed: evaluated at render time
  EXPECT_NE(registry.render_prometheus().find("bp_live 42\n"),
            std::string::npos);
  registry.remove("bp_live");
  EXPECT_EQ(registry.render_prometheus().find("bp_live"), std::string::npos);
}

TEST(ObsMetrics, FaultMetricsBridge) {
  MetricsRegistry registry;
  register_fault_metrics(registry);
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("bp_fault_points_armed"), std::string::npos);
  EXPECT_NE(text.find("bp_fault_fires_total"), std::string::npos);
}

// ------------------- ServeMetrics on the registry ----------------------

TEST(ObsServeMetrics, ExportsThroughSharedRegistry) {
  MetricsRegistry registry;
  serve::ServeMetrics metrics(2, &registry, "bp_serve");
  metrics.record_scored(0, /*flagged=*/true, /*latency_micros=*/120);
  metrics.record_scored(1, /*flagged=*/false, /*latency_micros=*/80);
  metrics.record_rejected();
  metrics.set_stalled_workers(1);

  EXPECT_EQ(&metrics.registry(), &registry);
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("bp_serve_scored_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("bp_serve_flagged_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("bp_serve_rejected_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("bp_serve_stalled_workers 1\n"), std::string::npos);
  EXPECT_NE(text.find("bp_serve_latency_micros_count 2\n"), std::string::npos);

  const serve::MetricsSnapshot snapshot = metrics.snapshot();
  EXPECT_EQ(snapshot.scored, 2u);
  EXPECT_EQ(snapshot.flagged, 1u);
  EXPECT_EQ(snapshot.stalled_workers, 1u);
}

TEST(ObsServeMetrics, PrivateRegistryIsolatesInstances) {
  serve::ServeMetrics a(1);
  serve::ServeMetrics b(1);
  a.record_scored(0, false, 10);
  EXPECT_EQ(a.snapshot().scored, 1u);
  EXPECT_EQ(b.snapshot().scored, 0u);
  EXPECT_NE(&a.registry(), &b.registry());
}

// ------------------ quantile / budget edge semantics -------------------

serve::MetricsSnapshot snapshot_with_bucket(std::size_t bucket,
                                            std::uint64_t count) {
  serve::MetricsSnapshot s;
  s.latency_histogram[bucket] = count;
  return s;
}

TEST(ObsLatencyQuantile, InterpolatesInsideABucket) {
  // Bucket 1 spans (50, 100]; rank q*total interpolates linearly.
  const serve::MetricsSnapshot s = snapshot_with_bucket(1, 4);
  EXPECT_DOUBLE_EQ(s.latency_quantile_micros(0.5), 75.0);
  EXPECT_DOUBLE_EQ(s.latency_quantile_micros(1.0), 100.0);
}

TEST(ObsLatencyQuantile, ClampsOutOfRangeAndNaN) {
  const serve::MetricsSnapshot s = snapshot_with_bucket(1, 4);
  EXPECT_DOUBLE_EQ(s.latency_quantile_micros(-5.0),
                   s.latency_quantile_micros(0.0));
  EXPECT_DOUBLE_EQ(s.latency_quantile_micros(2.0),
                   s.latency_quantile_micros(1.0));
  const double at_nan =
      s.latency_quantile_micros(std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(std::isnan(at_nan));
  EXPECT_DOUBLE_EQ(at_nan, s.latency_quantile_micros(0.0));
}

TEST(ObsLatencyQuantile, ZeroSamplesYieldZero) {
  const serve::MetricsSnapshot s;
  EXPECT_DOUBLE_EQ(s.latency_quantile_micros(0.99), 0.0);
  EXPECT_TRUE(s.within_budget());
}

TEST(ObsLatencyQuantile, BudgetIsInclusiveAtExactlyOneHundredMs) {
  // 99 samples fill the (50ms, 100ms] bucket and 1 sample sits above it,
  // so p99 lands exactly on the 100'000 us bucket edge.  "around 100
  // milliseconds" is a target, not an open bound: exactly 100 ms must
  // count as within budget (the old `<` comparison got this wrong).
  serve::MetricsSnapshot s;
  s.latency_histogram[10] = 99;  // bound 100'000
  s.latency_histogram[11] = 1;   // bound 250'000
  ASSERT_DOUBLE_EQ(s.p99_micros(), 100'000.0);
  EXPECT_TRUE(s.within_budget());

  // One sample deeper into the next bucket pushes p99 over.
  serve::MetricsSnapshot over;
  over.latency_histogram[10] = 98;
  over.latency_histogram[11] = 2;
  EXPECT_GT(over.p99_micros(), 100'000.0);
  EXPECT_FALSE(over.within_budget());
}

// --------------------- retrain supervisor export -----------------------

const ua::UserAgent kChrome100{ua::Vendor::kChrome, 100, ua::Os::kWindows10};
const ua::UserAgent kFirefox100{ua::Vendor::kFirefox, 100,
                                ua::Os::kWindows10};

core::Polygraph make_tiny_model() {
  core::PolygraphConfig config;
  config.feature_indices = {0, 1};
  config.pca_components = 2;
  config.k = 2;
  ml::Matrix centroids(2, 2);
  centroids(1, 0) = 10.0;
  centroids(1, 1) = 10.0;
  ml::KMeansConfig kconfig;
  kconfig.k = 2;
  core::ClusterTable table;
  table.assign(kChrome100, 0);
  table.assign(kFirefox100, 1);
  return core::Polygraph::from_parts(
      config, ml::StandardScaler::from_params({0.0, 0.0}, {1.0, 1.0}),
      ml::Pca::from_params({0.0, 0.0}, {1.0, 1.0}, ml::Matrix::identity(2)),
      ml::KMeans::from_centroids(std::move(centroids), kconfig),
      std::move(table));
}

TEST(ObsRetrainExport, StatusExportedAfterEveryCycle) {
  MetricsRegistry registry;
  serve::ModelRegistry models;
  serve::RetrainConfig config;
  config.max_attempts = 1;
  config.registry = &registry;

  bool should_train = true;
  serve::RetrainSupervisor supervisor(
      models, config, [&] { return should_train; },
      [] { return std::optional<core::Polygraph>(make_tiny_model()); },
      [](const core::Polygraph&) { return true; },
      [](std::chrono::milliseconds) {});

  ASSERT_EQ(supervisor.run_cycle(), serve::CycleResult::kPublished);
  EXPECT_EQ(registry.counter("bp_retrain_cycles_total").value(), 1u);
  EXPECT_EQ(registry.counter("bp_retrain_published_total").value(), 1u);
  EXPECT_EQ(registry.counter("bp_retrain_attempts_total").value(), 1u);
  EXPECT_EQ(registry.counter("bp_retrain_failed_cycles_total").value(), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge("bp_retrain_staleness_cycles").value(), 0.0);
  EXPECT_DOUBLE_EQ(
      registry.gauge("bp_retrain_last_published_version").value(), 1.0);

  should_train = false;
  ASSERT_EQ(supervisor.run_cycle(), serve::CycleResult::kNoDrift);
  EXPECT_EQ(registry.counter("bp_retrain_cycles_total").value(), 2u);
  EXPECT_DOUBLE_EQ(registry.gauge("bp_retrain_staleness_cycles").value(), 1.0);
}

TEST(ObsRetrainExport, FailuresAndBreakerVisibleInGauges) {
  MetricsRegistry registry;
  serve::ModelRegistry models;
  serve::RetrainConfig config;
  config.max_attempts = 2;
  config.breaker_threshold = 1;
  config.breaker_cooldown_cycles = 1;
  config.registry = &registry;

  serve::RetrainSupervisor supervisor(
      models, config, [] { return true; },
      [] { return std::optional<core::Polygraph>(); },  // always fails
      {}, [](std::chrono::milliseconds) {});

  ASSERT_EQ(supervisor.run_cycle(), serve::CycleResult::kFailed);
  EXPECT_EQ(registry.counter("bp_retrain_failed_cycles_total").value(), 1u);
  EXPECT_EQ(registry.counter("bp_retrain_attempts_total").value(), 2u);
  EXPECT_DOUBLE_EQ(registry.gauge("bp_retrain_breaker_open").value(), 1.0);
  EXPECT_DOUBLE_EQ(
      registry.gauge("bp_retrain_consecutive_failures").value(), 1.0);
  EXPECT_GT(registry.gauge("bp_retrain_last_backoff_ms").value(), 0.0);

  ASSERT_EQ(supervisor.run_cycle(), serve::CycleResult::kBreakerOpen);
  EXPECT_EQ(registry.counter("bp_retrain_cycles_total").value(), 2u);
  EXPECT_DOUBLE_EQ(registry.gauge("bp_retrain_staleness_cycles").value(), 2.0);
}

// --------------------------- drift export ------------------------------

TEST(ObsDriftExport, CheckExportsCountersAndSkips) {
  MetricsRegistry registry;
  const core::Polygraph model = make_tiny_model();
  const core::DriftDetector detector(model, 0.98, &registry);

  traffic::Dataset data({0, 1});
  for (int i = 0; i < 3; ++i) {
    traffic::SessionRecord record;
    record.claimed = kChrome100;
    record.features = {0, 0};  // cluster 0, matching the table
    data.add(std::move(record));
  }
  const ua::UserAgent unseen{ua::Vendor::kChrome, 200, ua::Os::kWindows10};
  const core::DriftReport report =
      detector.check(data, {kChrome100, unseen},
                     bp::util::Date::from_ymd(2023, 10, 1));

  ASSERT_EQ(report.entries.size(), 1u);
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_EQ(registry.counter("bp_drift_checks_total").value(), 1u);
  EXPECT_EQ(registry.counter("bp_drift_releases_checked_total").value(), 1u);
  // A silently unmonitored release is an operational state of its own:
  // the skip is a counter, not just a field on the bespoke report.
  EXPECT_EQ(registry.counter("bp_drift_releases_skipped_total").value(), 1u);
  EXPECT_EQ(registry.counter("bp_drift_retraining_signals_total").value(), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge("bp_drift_last_min_accuracy").value(), 1.0);
  EXPECT_DOUBLE_EQ(registry.gauge("bp_drift_last_skipped").value(), 1.0);
  EXPECT_DOUBLE_EQ(
      registry.gauge("bp_drift_last_retraining_required").value(), 0.0);
}

TEST(ObsDriftExport, NullRegistryDisablesExport) {
  const core::Polygraph model = make_tiny_model();
  const core::DriftDetector detector(model, 0.98);  // no registry
  traffic::Dataset data({0, 1});
  const core::DriftReport report = detector.check(
      data, {kChrome100}, bp::util::Date::from_ymd(2023, 10, 1));
  EXPECT_EQ(report.entries.size(), 0u);  // no sessions -> skipped
  EXPECT_EQ(report.skipped.size(), 1u);
}

}  // namespace
}  // namespace bp::obs
