#include "net/score_client.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <thread>
#include <utility>

#include "util/rng.h"

namespace bp::net {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

std::string_view score_client_outcome_name(ScoreClientOutcome o) noexcept {
  switch (o) {
    case ScoreClientOutcome::kOk: return "ok";
    case ScoreClientOutcome::kShed: return "shed";
    case ScoreClientOutcome::kRejected: return "rejected";
    case ScoreClientOutcome::kTransportError: return "transport_error";
    case ScoreClientOutcome::kCorruptResponse: return "corrupt_response";
    case ScoreClientOutcome::kDeadlineExhausted: return "deadline_exhausted";
    case ScoreClientOutcome::kBreakerOpen: return "breaker_open";
  }
  return "unknown";
}

// The race an attempt runs when hedging is on: primary (and maybe a
// hedge) settle the shared state; a *definitive* server answer settles
// immediately, a transport-level failure only settles once no runner
// is left — a fast-failing primary must not steal the race from a
// hedge that would have succeeded.
struct ScoreClient::RaceState {
  std::mutex mutex;
  std::condition_variable cv;
  int outstanding = 1;  // primary; +1 when a hedge launches
  bool settled = false;
  bool winner_is_hedge = false;
  AttemptResult winner;

  void settle(AttemptResult result, bool is_hedge) {
    std::lock_guard<std::mutex> lock(mutex);
    if (settled) return;
    --outstanding;
    const bool is_definitive =
        result.kind == AttemptResult::Kind::kOk ||
        result.kind == AttemptResult::Kind::kShed ||
        result.kind == AttemptResult::Kind::kRejected;
    if (!is_definitive && outstanding > 0) {
      return;  // let the other runner finish the race
    }
    settled = true;
    winner = std::move(result);
    winner_is_hedge = is_hedge;
    cv.notify_all();
  }
};

ScoreClient::ScoreClient(ScoreClientConfig config)
    : config_(std::move(config)) {
  if (config_.registry != nullptr) {
    obs::MetricsRegistry& r = *config_.registry;
    const std::string& p = config_.metrics_prefix;
    m_calls_ = &r.counter(p + "_calls_total", "score() calls");
    m_attempts_ = &r.counter(p + "_attempts_total", "network attempts");
    m_retries_ = &r.counter(p + "_retries_total", "backoff retries");
    m_hedges_ = &r.counter(p + "_hedges_total", "hedged second requests");
    m_hedge_wins_ = &r.counter(p + "_hedge_wins_total",
                               "races settled by the hedge");
    m_ok_ = &r.counter(p + "_ok_total", "calls answered with a verdict");
    m_shed_ = &r.counter(p + "_shed_total", "calls shed by the server (503)");
    m_rejected_ = &r.counter(p + "_rejected_total", "calls refused (4xx)");
    m_transport_ = &r.counter(p + "_transport_errors_total",
                              "calls failed at the transport");
    m_corrupt_ = &r.counter(p + "_corrupt_responses_total",
                            "calls answered with an invalid frame");
    m_deadline_ = &r.counter(p + "_deadline_exhausted_total",
                             "calls that ran out of budget");
    m_short_circuits_ = &r.counter(p + "_breaker_short_circuits_total",
                                   "calls short-circuited by the breaker");
    m_breaker_opens_ = &r.counter(p + "_breaker_opens_total",
                                  "breaker open transitions");
    m_trace_propagated_ = &r.counter(
        "bp_trace_propagated_total",
        "frames sent carrying a t: trace context (primaries and hedges)");
    r.gauge_callback(
        p + "_breaker_open",
        [this] { return breaker_open() ? 1.0 : 0.0; },
        "1 while the circuit breaker is open");
    gauge_registered_ = true;
  }
}

ScoreClient::~ScoreClient() {
  if (gauge_registered_ && config_.registry != nullptr) {
    config_.registry->remove(config_.metrics_prefix + "_breaker_open");
  }
}

void ScoreClient::bump(std::uint64_t ScoreClientStats::* field,
                       obs::Counter* counter) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++(stats_.*field);
  }
  if (counter != nullptr) counter->increment();
}

ScoreClientStats ScoreClient::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

bool ScoreClient::breaker_open() const {
  std::lock_guard<std::mutex> lock(
      const_cast<std::mutex&>(breaker_mutex_));
  return breaker_open_;
}

void ScoreClient::reset_breaker() {
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  breaker_open_ = false;
  consecutive_failures_ = 0;
  cooldown_remaining_ = 0;
}

void ScoreClient::breaker_on_success() {
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  breaker_open_ = false;
  consecutive_failures_ = 0;
  cooldown_remaining_ = 0;
}

void ScoreClient::breaker_on_failure() {
  bool opened = false;
  {
    std::lock_guard<std::mutex> lock(breaker_mutex_);
    ++consecutive_failures_;
    if (!breaker_open_ && consecutive_failures_ >= config_.breaker_threshold) {
      breaker_open_ = true;
      opened = true;
    }
    // A failure while open (the half-open probe failing) restarts the
    // cooldown.
    if (breaker_open_) cooldown_remaining_ = config_.breaker_cooldown;
  }
  if (opened) bump(&ScoreClientStats::breaker_opens, m_breaker_opens_);
}

std::unique_ptr<HttpClient> ScoreClient::acquire_connection() {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!pool_.empty()) {
      std::unique_ptr<HttpClient> connection = std::move(pool_.back());
      pool_.pop_back();
      return connection;
    }
  }
  return std::make_unique<HttpClient>(config_.host, config_.port,
                                      config_.io_timeout);
}

void ScoreClient::release_connection(std::unique_ptr<HttpClient> connection,
                                     bool healthy) {
  if (!connection) return;
  if (!healthy) connection->close();
  std::lock_guard<std::mutex> lock(pool_mutex_);
  if (pool_.size() < config_.pool_capacity) {
    pool_.push_back(std::move(connection));
  }
  // else: dropped; its destructor closes the socket.
}

std::chrono::milliseconds ScoreClient::next_backoff(std::uint64_t session_id,
                                                    int retry_index) const {
  double base = static_cast<double>(config_.initial_backoff.count()) *
                std::pow(config_.backoff_multiplier,
                         static_cast<double>(retry_index));
  base = std::min(base, static_cast<double>(config_.max_backoff.count()));
  // Pure pre-split streams (the PR-2/PR-3 determinism discipline): the
  // jitter of retry k of session s is the same on every run and every
  // thread interleaving, so a chaos soak's backoff schedule — and the
  // trace it produces — replays bit-for-bit.
  util::Rng stream = util::Rng(config_.jitter_seed)
                         .split(session_id)
                         .split(static_cast<std::uint64_t>(retry_index) + 1);
  const double factor = 0.5 + 0.5 * stream.uniform();
  const auto jittered = static_cast<std::int64_t>(base * factor);
  return std::chrono::milliseconds(std::max<std::int64_t>(jittered, 0));
}

ScoreClient::AttemptResult ScoreClient::exchange_once(
    HttpClient& connection, const std::string& frame,
    std::uint64_t session_id) {
  AttemptResult result;
  const bool reused = connection.connected();
  if (!reused && !connection.connect()) {
    result.kind = AttemptResult::Kind::kTransport;
    result.error = connection.error();
    result.poison_connection = true;
    return result;
  }
  if (!connection.send_request("POST", "/score", frame,
                               "application/x-bpwire")) {
    // A reused keep-alive connection may have been closed (or reaped)
    // by the server between calls; one reconnect retry, send-side only
    // — the request was never read, so resending cannot duplicate it
    // mid-pipeline.
    connection.close();
    if (!reused || !connection.connect() ||
        !connection.send_request("POST", "/score", frame,
                                 "application/x-bpwire")) {
      result.kind = AttemptResult::Kind::kTransport;
      result.error = connection.error();
      result.poison_connection = true;
      return result;
    }
  }
  const HttpResult http = connection.read_response();
  if (http.status < 0) {
    result.kind = AttemptResult::Kind::kTransport;
    result.error = http.error;
    result.poison_connection = true;
    return result;
  }
  if (http.status == 503) {
    result.kind = AttemptResult::Kind::kShed;
    result.error = "server shed the request (503)";
    return result;
  }
  if (http.status >= 400 && http.status < 500) {
    result.kind = AttemptResult::Kind::kRejected;
    result.error = "server refused (" + std::to_string(http.status) + "): " +
                   http.body;
    return result;
  }
  if (http.status != 200) {
    result.kind = AttemptResult::Kind::kCorrupt;
    result.error = "unexpected status " + std::to_string(http.status);
    result.poison_connection = true;
    return result;
  }
  WireScoreResponse response;
  const WireError wire = parse_score_response(http.body, &response);
  if (wire != WireError::kOk) {
    result.kind = AttemptResult::Kind::kCorrupt;
    result.error = "invalid response frame: ";
    result.error.append(wire_error_name(wire));
    result.poison_connection = true;  // framing may be desynchronized
    return result;
  }
  if (response.session_id != session_id) {
    result.kind = AttemptResult::Kind::kCorrupt;
    result.error = "session echo mismatch";
    result.poison_connection = true;
    return result;
  }
  result.kind = AttemptResult::Kind::kOk;
  result.response = response;
  return result;
}

ScoreClient::AttemptResult ScoreClient::attempt(
    const std::string& frame, std::uint64_t session_id, std::uint64_t trace_id,
    bool trace_sampled, int attempt_index, Clock::time_point deadline,
    ScoreCallResult* call) {
  const bool tracing = trace_id != 0;
  const std::uint32_t primary_span =
      8u * static_cast<std::uint32_t>(attempt_index) + 2;
  const std::uint32_t hedge_span = primary_span + 1;

  // Each runner sends the base frame plus its *own* t: segment (parent
  // = that runner's span id), so the server-side spans parent under the
  // exact attempt — primary or hedged twin — that reached the ingress.
  std::string primary_frame_storage;
  const std::string* primary_frame = &frame;
  if (tracing) {
    primary_frame_storage = frame;
    append_trace_context({trace_id, primary_span, trace_sampled},
                         &primary_frame_storage);
    primary_frame = &primary_frame_storage;
    bump(&ScoreClientStats::trace_propagated, m_trace_propagated_);
  }

  std::unique_ptr<HttpClient> primary = acquire_connection();

  if (config_.hedge_delay.count() == 0) {
    const std::int64_t start_us = tracing ? obs::steady_now_us() : 0;
    AttemptResult result = exchange_once(*primary, *primary_frame, session_id);
    release_connection(std::move(primary), !result.poison_connection);
    if (tracing && trace_sampled) {
      // A lone runner wins its attempt when it settled the call with a
      // definitive server answer a retry will not supersede.
      const bool winner = result.kind == AttemptResult::Kind::kOk ||
                          result.kind == AttemptResult::Kind::kRejected;
      config_.trace->record({trace_id, primary_span, 1,
                             winner ? "attempt_winner" : "attempt", start_us,
                             obs::steady_now_us()});
    }
    return result;
  }

  RaceState state;
  std::int64_t primary_start_us = 0;
  std::int64_t primary_end_us = 0;
  std::thread primary_thread([&] {
    if (tracing) primary_start_us = obs::steady_now_us();
    AttemptResult result = exchange_once(*primary, *primary_frame, session_id);
    if (tracing) primary_end_us = obs::steady_now_us();
    state.settle(std::move(result), /*is_hedge=*/false);
  });

  std::unique_ptr<HttpClient> hedge;
  std::thread hedge_thread;
  std::string hedge_frame_storage;
  const std::string* hedge_frame = &frame;
  std::int64_t hedge_start_us = 0;
  std::int64_t hedge_end_us = 0;
  bool launched_hedge = false;
  AttemptResult winner;
  bool hedge_won = false;
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    const Clock::time_point hedge_at =
        std::min(deadline, Clock::now() + config_.hedge_delay);
    if (!state.cv.wait_until(lock, hedge_at,
                             [&] { return state.settled; }) &&
        Clock::now() < deadline) {
      ++state.outstanding;
      lock.unlock();
      hedge = acquire_connection();
      if (tracing) {
        hedge_frame_storage = frame;
        append_trace_context({trace_id, hedge_span, trace_sampled},
                             &hedge_frame_storage);
        hedge_frame = &hedge_frame_storage;
        bump(&ScoreClientStats::trace_propagated, m_trace_propagated_);
      }
      launched_hedge = true;
      call->hedged = true;
      bump(&ScoreClientStats::hedges, m_hedges_);
      hedge_thread = std::thread([&] {
        if (tracing) hedge_start_us = obs::steady_now_us();
        AttemptResult result = exchange_once(*hedge, *hedge_frame, session_id);
        if (tracing) hedge_end_us = obs::steady_now_us();
        state.settle(std::move(result), /*is_hedge=*/true);
      });
      lock.lock();
    }
    if (!state.cv.wait_until(lock, deadline,
                             [&] { return state.settled; })) {
      // Budget exhausted with requests still in flight: settle the
      // race ourselves so late finishers discard their results.
      state.settled = true;
      state.winner.kind = AttemptResult::Kind::kTimedOut;
      state.winner.error = "deadline exceeded with request in flight";
    }
    winner = state.winner;
    hedge_won = state.winner_is_hedge;
  }

  // Cancel the losers: shutting their sockets down unblocks whatever
  // they are waiting on, so the joins below are prompt.
  if (winner.kind == AttemptResult::Kind::kTimedOut) {
    primary->abort_connection();
    if (launched_hedge) hedge->abort_connection();
  } else if (hedge_won) {
    primary->abort_connection();
  } else if (launched_hedge) {
    hedge->abort_connection();
  }
  primary_thread.join();
  if (hedge_thread.joinable()) hedge_thread.join();

  const bool timed_out = winner.kind == AttemptResult::Kind::kTimedOut;
  // The winner's connection survives if its exchange left it healthy;
  // every aborted loser is poisoned by construction.
  const bool primary_healthy =
      !timed_out && !hedge_won && !winner.poison_connection;
  const bool hedge_healthy =
      !timed_out && hedge_won && !winner.poison_connection;
  release_connection(std::move(primary), primary_healthy);
  if (launched_hedge) release_connection(std::move(hedge), hedge_healthy);

  if (hedge_won && !timed_out) {
    call->hedge_won = true;
    bump(&ScoreClientStats::hedge_wins, m_hedge_wins_);
  }

  if (tracing && trace_sampled) {
    // Both runners are joined, so their timestamps are final; exactly
    // the race-settling runner — and only on a definitive answer —
    // carries the *_winner name.
    const bool definitive_win =
        !timed_out && (winner.kind == AttemptResult::Kind::kOk ||
                       winner.kind == AttemptResult::Kind::kRejected);
    obs::TraceSink* sink = config_.trace;
    sink->record({trace_id, primary_span, 1,
                  definitive_win && !hedge_won ? "attempt_winner" : "attempt",
                  primary_start_us, primary_end_us});
    if (launched_hedge) {
      sink->record({trace_id, hedge_span, 1,
                    definitive_win && hedge_won ? "hedge_winner" : "hedge",
                    hedge_start_us, hedge_end_us});
    }
  }
  return winner;
}

ScoreCallResult ScoreClient::score(std::uint64_t session_id,
                                   std::string_view claimed_ua,
                                   std::span<const std::int32_t> features) {
  ScoreCallResult call;
  bump(&ScoreClientStats::calls, m_calls_);

  {
    std::lock_guard<std::mutex> lock(breaker_mutex_);
    if (breaker_open_) {
      if (cooldown_remaining_ > 0) {
        --cooldown_remaining_;
        call.outcome = ScoreClientOutcome::kBreakerOpen;
        call.error = "circuit breaker open";
        // bump() takes its own lock; do it outside this one.
      } else {
        // Cooldown spent: this call goes through as the half-open
        // probe.  Its outcome closes or re-arms the breaker.
      }
    }
  }
  if (call.outcome == ScoreClientOutcome::kBreakerOpen) {
    bump(&ScoreClientStats::breaker_short_circuits, m_short_circuits_);
    return call;
  }

  std::string frame;
  render_score_request(session_id, claimed_ua, features, &frame);

  // Mint the call's trace id: pure in (trace_seed, session_id), so a
  // deterministic replay of the same session stream yields the same
  // trace ids in the same order, whatever the thread interleaving.
  obs::TraceSink* sink = config_.trace;
  std::int64_t call_start_us = 0;
  if (sink != nullptr) {
    util::Rng stream = util::Rng(config_.trace_seed).split(session_id);
    call.trace_id = stream.next();
    if (call.trace_id == 0) call.trace_id = 1;  // 0 means "no context"
    call.trace_sampled = sink->sampled(call.trace_id);
    call_start_us = obs::steady_now_us();
  }
  const auto finish_trace = [&] {
    if (sink != nullptr && call.trace_sampled) {
      sink->record({call.trace_id, 1, 0, "client_call", call_start_us,
                    obs::steady_now_us()});
    }
  };

  const Clock::time_point deadline = Clock::now() + config_.deadline;
  const int max_attempts = std::max(config_.max_attempts, 1);

  AttemptResult last;
  bool out_of_budget = false;
  for (int a = 0; a < max_attempts; ++a) {
    if (a > 0) {
      const Clock::time_point now = Clock::now();
      if (now >= deadline) {
        out_of_budget = true;
        break;
      }
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now);
      const std::chrono::milliseconds backoff =
          std::min(next_backoff(session_id, a - 1), remaining);
      if (backoff.count() > 0) {
        if (config_.sleep_fn) {
          config_.sleep_fn(backoff);
        } else {
          std::this_thread::sleep_for(backoff);
        }
      }
      bump(&ScoreClientStats::retries, m_retries_);
      if (Clock::now() >= deadline) {
        out_of_budget = true;
        break;
      }
    }
    ++call.attempts;
    bump(&ScoreClientStats::attempts, m_attempts_);
    last = attempt(frame, session_id, call.trace_id, call.trace_sampled, a + 1,
                   deadline, &call);
    if (last.kind == AttemptResult::Kind::kOk) {
      call.outcome = ScoreClientOutcome::kOk;
      call.response = last.response;
      breaker_on_success();
      bump(&ScoreClientStats::ok, m_ok_);
      finish_trace();
      return call;
    }
    if (last.kind == AttemptResult::Kind::kRejected) {
      // The plane is up and answering; a 4xx is this caller's bug, not
      // a reason to retry or to open the breaker.
      call.outcome = ScoreClientOutcome::kRejected;
      call.error = last.error;
      breaker_on_success();
      bump(&ScoreClientStats::rejected, m_rejected_);
      finish_trace();
      return call;
    }
    if (last.kind == AttemptResult::Kind::kTimedOut) {
      out_of_budget = true;
      break;
    }
  }

  breaker_on_failure();
  call.error = last.error;
  if (out_of_budget) {
    call.outcome = ScoreClientOutcome::kDeadlineExhausted;
    if (call.error.empty()) call.error = "deadline exhausted";
    bump(&ScoreClientStats::deadline_exhausted, m_deadline_);
  } else if (last.kind == AttemptResult::Kind::kShed) {
    call.outcome = ScoreClientOutcome::kShed;
    bump(&ScoreClientStats::shed, m_shed_);
  } else if (last.kind == AttemptResult::Kind::kCorrupt) {
    call.outcome = ScoreClientOutcome::kCorruptResponse;
    bump(&ScoreClientStats::corrupt, m_corrupt_);
  } else {
    call.outcome = ScoreClientOutcome::kTransportError;
    bump(&ScoreClientStats::transport_errors, m_transport_);
  }
  finish_trace();
  return call;
}

}  // namespace bp::net
