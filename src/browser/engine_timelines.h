// Engine timelines: the synthetic model of how JavaScript prototype
// shapes evolve across browser engine versions.
//
// This is the reproduction's stand-in for the real browsers the paper
// fingerprinted on BrowserStack (see DESIGN.md §2).  Each candidate
// feature's value is a deterministic function of (engine, engine
// version).  The production 22 deviation-based features follow hand-built
// piecewise-constant tables whose step boundaries realize the cluster
// eras implied by the paper's Table 3:
//
//   Blink : [59-68] [69-89] [90-101] [102-109] [110-113] [114-118] [119]
//   Gecko : [46-50] [51-91] [92-100] [101-118] [119]
//   EdgeHTML: constant (17-19)
//
// with the cross-engine coincidences the paper observed: early Blink
// (Chrome 59-68) and mid Gecko (Firefox 51-91) are nearly identical
// (cluster 2), EdgeHTML sits next to Firefox 46-50 (cluster 6), and
// Firefox 119's Element-prototype rework (§7.3) is modeled as a
// convergence toward Chromium 90-101-like prototype shapes, which is what
// pushes it into the Chrome 90-101 cluster during drift analysis.
//
// The remaining candidates (178 deviation-based, 307 time-based) get
// hash-derived behaviours statistically matching §6.3's findings: ~30% of
// deviation-based and ~40% of time-based candidates are constant across
// the modern population; most time-based bits stopped flipping before
// 2020.
#pragma once

#include <cstddef>
#include <cstdint>

#include "browser/feature_catalog.h"
#include "browser/release_db.h"

namespace bp::browser {

// Era index of an engine version (see header comment for the bands).
int blink_era(int version) noexcept;
int gecko_era(int version) noexcept;

// Baseline value of candidate feature `candidate_index` for a pristine
// install of (engine, engine_version) — no extensions, stock config.
// Deviation-based features return property counts; time-based features
// return 0/1.
int baseline_value(Engine engine, int engine_version,
                   std::size_t candidate_index);

// True when the feature is constant across every engine/version this
// model can produce (used by tests to validate the §6.3 statistics).
bool is_globally_constant(std::size_t candidate_index);

// Staggered-rollout blend (models Chrome field trials / partial feature
// rollouts): the fraction of sessions of the release that still report
// the PREVIOUS era's feature values.  Zero for almost every release; the
// drift-triggering releases of §7.3 (Chrome 119, Firefox 119) carry small
// non-zero fractions, which is what degrades their clustering accuracy in
// Table 6.  Vendor-aware: Edge 119 ships the same Blink but with its own
// flag schedule and no partial rollback, matching Table 6's 99.8%.
double rollout_blend_fraction(const BrowserRelease& release) noexcept;

// Baseline value as above, but for the era preceding the release's own
// (used together with rollout_blend_fraction).
int previous_era_value(Engine engine, int engine_version,
                       std::size_t candidate_index);

}  // namespace bp::browser
