#include "util/rng.h"

#include <cmath>

namespace bp::util {

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire's nearly-divisionless bounded sampling with rejection to keep
  // the distribution exactly uniform.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next();
    const unsigned __int128 m =
        static_cast<unsigned __int128>(r) * static_cast<unsigned __int128>(n);
    const auto low = static_cast<std::uint64_t>(m);
    if (low >= threshold) return static_cast<std::uint64_t>(m >> 64);
  }
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::normal() noexcept {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = radius * std::sin(angle);
  have_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::exponential(double lambda) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

int Rng::integer_noise(double p, double decay) noexcept {
  if (!chance(p)) return 0;
  int magnitude = 1;
  while (chance(decay)) ++magnitude;
  return chance(0.5) ? magnitude : -magnitude;
}

std::size_t Rng::weighted(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.size();
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;  // numeric slop lands on the last bucket
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n,
                                             std::size_t k) noexcept {
  if (k > n) k = n;
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(below(n - i));
    using std::swap;
    swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace bp::util
