// Tests for the deterministic thread-pool substrate (util/parallel.h):
// coverage and ordering of parallel_for / parallel_reduce, nested
// submission, exception propagation, and pool shutdown under load.
// scripts/tier1.sh re-runs this file under -fsanitize=thread.
#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace bp::util {
namespace {

// Restores the process-wide pool size after each test so thread-count
// experiments cannot leak into unrelated suites.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { set_parallel_threads(0); }
};

TEST_F(ParallelTest, ForCoversRangeExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    set_parallel_threads(threads);
    constexpr std::size_t kN = 10'000;
    std::vector<std::atomic<int>> hits(kN);
    parallel_for(std::size_t{0}, kN, 97, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST_F(ParallelTest, ForHandlesEmptyAndTinyRanges) {
  int calls = 0;
  parallel_for(std::size_t{5}, std::size_t{5}, 16,
               [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(std::size_t{5}, std::size_t{6}, 16,
               [&](std::size_t b, std::size_t e) {
                 ++calls;
                 EXPECT_EQ(b, 5u);
                 EXPECT_EQ(e, 6u);
               });
  EXPECT_EQ(calls, 1);
}

TEST_F(ParallelTest, ReduceMatchesSerialSum) {
  constexpr std::size_t kN = 50'000;
  std::vector<double> values(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  // Serial chunked reference with the same grain: the reduce contract is
  // "merged in chunk order", so this must match bitwise.
  constexpr std::size_t kGrain = 1024;
  double expected = 0.0;
  for (std::size_t b = 0; b < kN; b += kGrain) {
    const std::size_t e = std::min(kN, b + kGrain);
    double chunk = 0.0;
    for (std::size_t i = b; i < e; ++i) chunk += values[i];
    expected += chunk;
  }

  for (std::size_t threads : {1u, 2u, 8u}) {
    set_parallel_threads(threads);
    const double total = parallel_reduce(
        std::size_t{0}, kN, kGrain, 0.0,
        [&](std::size_t b, std::size_t e) {
          double chunk = 0.0;
          for (std::size_t i = b; i < e; ++i) chunk += values[i];
          return chunk;
        },
        [](double& acc, double part) { acc += part; });
    EXPECT_EQ(total, expected) << "threads " << threads;
  }
}

TEST_F(ParallelTest, ReduceIsBitIdenticalAcrossThreadCounts) {
  constexpr std::size_t kN = 30'000;
  auto run = [&] {
    return parallel_reduce(
        std::size_t{0}, kN, 613, 0.0,
        [](std::size_t b, std::size_t e) {
          double chunk = 0.0;
          for (std::size_t i = b; i < e; ++i) {
            const double x = static_cast<double>(i) * 1e-3;
            chunk += x * x - x / 3.0;
          }
          return chunk;
        },
        [](double& acc, double part) { acc += part; });
  };
  set_parallel_threads(1);
  const double serial = run();
  for (std::size_t threads : {2u, 3u, 8u}) {
    set_parallel_threads(threads);
    EXPECT_EQ(run(), serial) << "threads " << threads;
  }
}

TEST_F(ParallelTest, NestedSubmissionCompletes) {
  set_parallel_threads(4);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 2'000;
  std::vector<long> totals(kOuter, 0);
  parallel_for(std::size_t{0}, kOuter, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t o = b; o < e; ++o) {
      totals[o] = parallel_reduce(
          std::size_t{0}, kInner, 128, 0L,
          [](std::size_t ib, std::size_t ie) {
            long chunk = 0;
            for (std::size_t i = ib; i < ie; ++i) {
              chunk += static_cast<long>(i);
            }
            return chunk;
          },
          [](long& acc, long part) { acc += part; });
    }
  });
  const long expected = static_cast<long>(kInner) * (kInner - 1) / 2;
  for (std::size_t o = 0; o < kOuter; ++o) EXPECT_EQ(totals[o], expected);
}

TEST_F(ParallelTest, ExceptionPropagatesAndPoolSurvives) {
  set_parallel_threads(4);
  EXPECT_THROW(
      parallel_for(std::size_t{0}, std::size_t{1'000}, 7,
                   [](std::size_t b, std::size_t) {
                     if (b >= 490) throw std::runtime_error("chunk failed");
                   }),
      std::runtime_error);

  // The pool must remain fully usable after a failed region.
  std::atomic<std::size_t> covered{0};
  parallel_for(std::size_t{0}, std::size_t{1'000}, 7,
               [&](std::size_t b, std::size_t e) { covered += e - b; });
  EXPECT_EQ(covered.load(), 1'000u);
}

TEST_F(ParallelTest, ExceptionPropagatesOutOfNestedRegion) {
  set_parallel_threads(4);
  EXPECT_THROW(
      parallel_for(std::size_t{0}, std::size_t{4}, 1,
                   [](std::size_t, std::size_t) {
                     parallel_for(std::size_t{0}, std::size_t{100}, 3,
                                  [](std::size_t b, std::size_t) {
                                    if (b >= 51) {
                                      throw std::runtime_error("inner");
                                    }
                                  });
                   }),
      std::runtime_error);
}

TEST_F(ParallelTest, ResizeUnderRepeatedLoad) {
  for (std::size_t round = 0; round < 6; ++round) {
    set_parallel_threads(1 + round % 4);
    std::atomic<std::size_t> covered{0};
    parallel_for(std::size_t{0}, std::size_t{5'000}, 64,
                 [&](std::size_t b, std::size_t e) { covered += e - b; });
    EXPECT_EQ(covered.load(), 5'000u);
  }
}

// Standalone pools: many submitting threads drive regions concurrently,
// then the pool is destroyed the moment the last region returns — the
// TSan pass shakes out lifecycle races between lanes, the completion
// protocol, and worker shutdown.
TEST_F(ParallelTest, StandalonePoolStressAndShutdownUnderLoad) {
  for (std::size_t round = 0; round < 3; ++round) {
    auto pool = std::make_unique<ThreadPool>(4);
    std::atomic<long> grand_total{0};
    std::vector<std::thread> submitters;
    for (std::size_t s = 0; s < 4; ++s) {
      submitters.emplace_back([&pool, &grand_total] {
        for (int iter = 0; iter < 50; ++iter) {
          std::atomic<long> local{0};
          pool->run_chunks(32, [&local](std::size_t chunk) {
            local += static_cast<long>(chunk);
          });
          grand_total += local.load();
        }
      });
    }
    for (std::thread& t : submitters) t.join();
    pool.reset();  // shutdown immediately after the last region drains
    EXPECT_EQ(grand_total.load(), 4L * 50L * (31L * 32L / 2L));
  }
}

TEST_F(ParallelTest, DefaultThreadCountHonorsHardwareFloor) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
  EXPECT_LE(ThreadPool::default_thread_count(), 256u);
}

}  // namespace
}  // namespace bp::util
