// Ablation (§8 "user-agent randomization"): quantifies the paper's
// warning that UA-randomizing privacy tools inflate Browser Polygraph's
// false positives.  Honest sessions are re-scored with their UA replaced
// by a random same-vendor (or any-vendor) release, and the flag rate of
// this *benign* population measured.
#include <cstdio>

#include "bench_common.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace bp;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 100'000;

  std::printf("=== Ablation: user-agent randomization vs false positives ===\n");
  const auto data = benchmark_support::make_training_dataset(n);
  const auto trained = benchmark_support::train_production(data);
  const ml::Matrix features =
      data.feature_matrix(trained.model.config().feature_indices);

  const auto& db = browser::ReleaseDatabase::instance();
  std::vector<const browser::BrowserRelease*> all_releases;
  for (const auto& r : db.releases()) all_releases.push_back(&r);

  util::Rng rng(0xAB1A7E);
  auto measure = [&](int mode) {
    std::size_t scored = 0;
    std::size_t flagged = 0;
    double risk_sum = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const auto& record = data.records()[i];
      if (record.kind != traffic::SessionKind::kBenign) continue;
      ua::UserAgent claimed = record.claimed;
      if (mode == 1) {
        // Same-vendor randomization (what privacy extensions often do).
        std::vector<const browser::BrowserRelease*> same;
        for (const auto* r : all_releases) {
          if (ua::same_vendor(r->vendor, claimed.vendor)) same.push_back(r);
        }
        claimed = same[rng.below(same.size())]->user_agent();
      } else if (mode == 2) {
        claimed = all_releases[rng.below(all_releases.size())]->user_agent();
      }
      const core::Detection d = trained.model.score(features.row(i), claimed);
      ++scored;
      if (d.flagged) {
        ++flagged;
        risk_sum += d.risk_factor;
      }
    }
    struct Result {
      std::size_t scored;
      std::size_t flagged;
      double avg_risk;
    };
    return Result{scored, flagged,
                  flagged > 0 ? risk_sum / static_cast<double>(flagged) : 0.0};
  };

  util::TextTable table(
      {"Claimed UA policy", "Benign sessions", "Flagged", "False-positive rate",
       "Avg. risk of FPs"});
  const char* labels[] = {"honest UA", "randomized (same vendor)",
                          "randomized (any vendor)"};
  for (int mode = 0; mode < 3; ++mode) {
    const auto result = measure(mode);
    table.add_row(
        {labels[mode], std::to_string(result.scored),
         std::to_string(result.flagged),
         util::format_double(100.0 * static_cast<double>(result.flagged) /
                                 static_cast<double>(result.scored),
                             2) +
             "%",
         util::format_double(result.avg_risk, 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nUA randomization turns benign users into near-certain positives — "
      "the §8 rationale for recommending against it (it also trips bot "
      "detection).\n");
  return 0;
}
