#include "baseline/profile.h"

#include <cstdio>

namespace bp::baseline {

namespace {

void append_json(const ProfileValue& v, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    char buf[32];
    const double d = v.as_number();
    if (d == static_cast<long long>(d)) {
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    } else {
      std::snprintf(buf, sizeof(buf), "%.10g", d);
    }
    out += buf;
  } else if (v.is_string()) {
    out += '"';
    for (char c : v.as_string()) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
  } else if (v.is_array()) {
    out += '[';
    bool first = true;
    for (const auto& item : v.as_array()) {
      if (!first) out += ',';
      first = false;
      append_json(item, out);
    }
    out += ']';
  } else {
    out += '{';
    bool first = true;
    for (const auto& [key, value] : v.as_object()) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += key;
      out += "\":";
      append_json(value, out);
    }
    out += '}';
  }
}

void flatten_into(const ProfileValue& v, const std::string& path,
                  std::vector<FlatLeaf>& out) {
  if (v.is_object()) {
    for (const auto& [key, value] : v.as_object()) {
      flatten_into(value, path.empty() ? key : path + "." + key, out);
    }
  } else if (v.is_array()) {
    const auto& array = v.as_array();
    out.push_back(FlatLeaf{path + ".length",
                           ProfileValue(static_cast<double>(array.size()))});
    for (std::size_t i = 0; i < array.size(); ++i) {
      flatten_into(array[i], path + "." + std::to_string(i), out);
    }
  } else {
    out.push_back(FlatLeaf{path, v});
  }
}

}  // namespace

std::string ProfileValue::to_json() const {
  std::string out;
  append_json(*this, out);
  return out;
}

std::vector<FlatLeaf> flatten_profile(const ProfileValue& root) {
  std::vector<FlatLeaf> out;
  flatten_into(root, "", out);
  return out;
}

}  // namespace bp::baseline
