#include "serve/serve_metrics.h"

#include <algorithm>
#include <cstdio>

namespace bp::serve {

std::size_t latency_bucket(std::uint64_t micros) noexcept {
  const auto it = std::lower_bound(kLatencyBucketBoundsMicros.begin(),
                                   kLatencyBucketBoundsMicros.end(), micros);
  return static_cast<std::size_t>(it - kLatencyBucketBoundsMicros.begin());
}

double MetricsSnapshot::latency_quantile_micros(double q) const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t c : latency_histogram) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < latency_histogram.size(); ++b) {
    if (latency_histogram[b] == 0) continue;
    const std::uint64_t next = cumulative + latency_histogram[b];
    if (rank <= static_cast<double>(next)) {
      const double lo =
          b == 0 ? 0.0
                 : static_cast<double>(kLatencyBucketBoundsMicros[b - 1]);
      // Open-ended last bucket: report its lower bound.
      const double hi =
          b < kLatencyBucketBoundsMicros.size()
              ? static_cast<double>(kLatencyBucketBoundsMicros[b])
              : lo;
      const double fraction =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(latency_histogram[b]);
      return lo + (hi - lo) * fraction;
    }
    cumulative = next;
  }
  return static_cast<double>(kLatencyBucketBoundsMicros.back());
}

std::string MetricsSnapshot::summary() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "scored=%llu flagged=%llu (%.2f%%) shed=%llu rejected=%llu "
      "deadline=%llu degraded=%llu stalled=%llu depth=%llu model=v%llu "
      "p50=%.0fus p95=%.0fus p99=%.0fus%s",
      static_cast<unsigned long long>(scored),
      static_cast<unsigned long long>(flagged), 100.0 * flag_rate(),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(deadline_exceeded),
      static_cast<unsigned long long>(degraded),
      static_cast<unsigned long long>(stalled_workers),
      static_cast<unsigned long long>(queue_depth),
      static_cast<unsigned long long>(model_version), p50_micros(),
      p95_micros(), p99_micros(),
      within_budget() ? "" : " [OVER 100ms BUDGET]");
  return buf;
}

ServeMetrics::ServeMetrics(std::size_t n_workers)
    : workers_(n_workers == 0 ? 1 : n_workers) {}

void ServeMetrics::record_scored(std::size_t worker, bool flagged,
                                 std::uint64_t latency_micros) noexcept {
  WorkerBlock& block = workers_[worker];
  block.scored.fetch_add(1, std::memory_order_relaxed);
  if (flagged) block.flagged.fetch_add(1, std::memory_order_relaxed);
  block.latency[latency_bucket(latency_micros)].fetch_add(
      1, std::memory_order_relaxed);
}

void ServeMetrics::record_shed(std::size_t worker) noexcept {
  workers_[worker].shed.fetch_add(1, std::memory_order_relaxed);
}

void ServeMetrics::record_deadline_exceeded(std::size_t worker) noexcept {
  workers_[worker].deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
}

void ServeMetrics::record_degraded(std::size_t worker, bool flagged,
                                   std::uint64_t latency_micros) noexcept {
  WorkerBlock& block = workers_[worker];
  block.degraded.fetch_add(1, std::memory_order_relaxed);
  if (flagged) block.flagged.fetch_add(1, std::memory_order_relaxed);
  block.latency[latency_bucket(latency_micros)].fetch_add(
      1, std::memory_order_relaxed);
}

void ServeMetrics::record_batch(std::size_t worker) noexcept {
  workers_[worker].batches.fetch_add(1, std::memory_order_relaxed);
}

void ServeMetrics::record_rejected() noexcept {
  rejected_.fetch_add(1, std::memory_order_relaxed);
}

void ServeMetrics::record_shed_on_submit() noexcept {
  shed_on_submit_.fetch_add(1, std::memory_order_relaxed);
}

MetricsSnapshot ServeMetrics::snapshot() const {
  MetricsSnapshot out;
  for (const WorkerBlock& block : workers_) {
    out.scored += block.scored.load(std::memory_order_relaxed);
    out.flagged += block.flagged.load(std::memory_order_relaxed);
    out.shed += block.shed.load(std::memory_order_relaxed);
    out.batches += block.batches.load(std::memory_order_relaxed);
    out.deadline_exceeded +=
        block.deadline_exceeded.load(std::memory_order_relaxed);
    out.degraded += block.degraded.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < out.latency_histogram.size(); ++b) {
      out.latency_histogram[b] +=
          block.latency[b].load(std::memory_order_relaxed);
    }
  }
  out.shed += shed_on_submit_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.stalled_workers = stalled_workers_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace bp::serve
