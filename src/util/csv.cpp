#include "util/csv.h"

#include <cstdio>
#include <memory>

namespace bp::util {

std::size_t CsvTable::column(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  return npos;
}

std::string csv_escape(std::string_view field, char delim) {
  const bool needs_quotes =
      field.find(delim) != std::string_view::npos ||
      field.find('"') != std::string_view::npos ||
      field.find('\n') != std::string_view::npos ||
      field.find('\r') != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string to_csv(const CsvTable& table, char delim) {
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out += delim;
      out += csv_escape(row[i], delim);
    }
    out += '\n';
  };
  if (!table.header.empty()) emit_row(table.header);
  for (const auto& row : table.rows) emit_row(row);
  return out;
}

CsvTable parse_csv(std::string_view text, bool has_header, char delim) {
  CsvTable table;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool any_field = false;

  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    any_field = true;
  };
  auto end_record = [&] {
    if (!any_field && record.empty()) return;  // skip blank line
    end_field();
    if (has_header && table.header.empty() && table.rows.empty()) {
      table.header = std::move(record);
    } else {
      table.rows.push_back(std::move(record));
    }
    record.clear();
    any_field = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
      any_field = true;
    } else if (c == delim) {
      end_field();
    } else if (c == '\n') {
      if (any_field || !field.empty() || !record.empty()) end_record();
    } else if (c == '\r') {
      // swallow; \r\n handled by the \n branch
    } else {
      field += c;
      any_field = true;
    }
  }
  if (any_field || !field.empty() || !record.empty()) end_record();
  return table;
}

bool write_file(const std::string& path, std::string_view contents) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (!f) return false;
  if (!contents.empty() &&
      std::fwrite(contents.data(), 1, contents.size(), f.get()) !=
          contents.size()) {
    return false;
  }
  return true;
}

bool read_file(const std::string& path, std::string& out) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!f) return false;
  out.clear();
  char buf[1 << 14];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    out.append(buf, n);
  }
  return std::ferror(f.get()) == 0;
}

}  // namespace bp::util
