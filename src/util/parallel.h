// Deterministic data-parallel substrate for the training pipeline.
//
// Every training hot path (k-means assignment, isolation-forest tree
// building, PCA covariance, scaler moments, traffic synthesis) runs
// through `parallel_for` / `parallel_reduce` over a process-wide pool.
// The design rule that makes retrains reproducible is that *work
// decomposition never depends on the thread count*: a range is split
// into chunks by a fixed `grain`, each chunk computes an independent
// partial, and partials are merged in ascending chunk order.  The
// thread count only decides which lane executes a chunk, so a model
// trained under BP_THREADS=1 and BP_THREADS=8 serializes to identical
// bytes (asserted by tests/training_determinism_test.cpp).
//
// Pool sizing: BP_THREADS env var if set, else hardware_concurrency.
// `set_parallel_threads` reconfigures at runtime (benches sweep it).
//
// Execution model: the caller of a parallel region is itself a lane —
// it dispatches chunks alongside the workers and only sleeps once the
// region has no chunks left.  That makes nested submission (a parallel
// restart whose assignment step is itself parallel) deadlock-free:
// progress never depends on a free worker.  Exceptions thrown by a
// chunk cancel the remaining chunks and rethrow in the caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace bp::util {

class ThreadPool {
 public:
  // threads == 0 means default_thread_count().  The pool spawns
  // threads-1 workers; the caller of each region is the final lane.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // The process-wide pool used by parallel_for / parallel_reduce.
  static ThreadPool& instance();

  // BP_THREADS env var (clamped to [1, 256]) or hardware_concurrency.
  static std::size_t default_thread_count();

  std::size_t thread_count() const noexcept { return threads_; }

  // Re-size the pool (0 = default).  Must not race with active regions;
  // callers (benches, determinism tests) reconfigure between runs.
  void resize(std::size_t threads);

  // Run fn(chunk_index) for every chunk_index in [0, n_chunks), blocking
  // until all complete.  Reentrant: chunks may themselves call
  // run_chunks.  The first exception thrown by a chunk cancels the
  // not-yet-started chunks and is rethrown here.
  void run_chunks(std::size_t n_chunks,
                  const std::function<void(std::size_t)>& fn);

 private:
  struct Region;

  void worker_loop(std::size_t lane);
  void start_workers();
  void stop_workers();
  // Executes one chunk of `region`, recording completion/failure.
  static void execute_chunk(Region& region, std::size_t chunk);

  std::size_t threads_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mutex_;                  // guards active_ and stop_
  std::condition_variable work_cv_;   // workers wait for regions
  std::vector<Region*> active_;       // LIFO: innermost regions first
  bool stop_ = false;
};

// Process-wide parallelism controls (forward to ThreadPool::instance()).
std::size_t parallel_threads();
void set_parallel_threads(std::size_t threads);

// Run fn(begin, end) over [begin, end) split into chunks of `grain`
// elements (grain is clamped to >= 1).  Chunks run concurrently; the
// decomposition depends only on `grain`, never on the thread count.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Fn&& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t n = end - begin;
  const std::size_t chunks = (n + grain - 1) / grain;
  auto run = [&](std::size_t c) {
    const std::size_t b = begin + c * grain;
    const std::size_t e = b + grain < end ? b + grain : end;
    fn(b, e);
  };
  ThreadPool& pool = ThreadPool::instance();
  if (chunks == 1 || pool.thread_count() == 1) {
    for (std::size_t c = 0; c < chunks; ++c) run(c);
    return;
  }
  pool.run_chunks(chunks, run);
}

// Ordered parallel reduction.  `map(begin, end)` produces one Partial
// per chunk; `merge(acc, partial)` folds them into `init` in ascending
// chunk order, so the floating-point result is a function of the grain
// alone and is bit-identical at any thread count.  The serial fast path
// performs the same chunked merge to keep 1-thread results aligned.
template <typename Partial, typename Map, typename Merge>
Partial parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                        Partial init, Map&& map, Merge&& merge) {
  if (end <= begin) return init;
  if (grain == 0) grain = 1;
  const std::size_t n = end - begin;
  const std::size_t chunks = (n + grain - 1) / grain;
  auto chunk_range = [&](std::size_t c) {
    const std::size_t b = begin + c * grain;
    const std::size_t e = b + grain < end ? b + grain : end;
    return std::pair<std::size_t, std::size_t>{b, e};
  };

  ThreadPool& pool = ThreadPool::instance();
  if (chunks == 1 || pool.thread_count() == 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto [b, e] = chunk_range(c);
      merge(init, map(b, e));
    }
    return init;
  }

  std::vector<Partial> partials(chunks);
  pool.run_chunks(chunks, [&](std::size_t c) {
    const auto [b, e] = chunk_range(c);
    partials[c] = map(b, e);
  });
  for (std::size_t c = 0; c < chunks; ++c) {
    merge(init, std::move(partials[c]));
  }
  return init;
}

}  // namespace bp::util
