#include "browser/release_db.h"

#include <algorithm>
#include <array>
#include <cassert>

namespace bp::browser {

namespace {

using bp::util::Date;

struct Anchor {
  int version;
  Date date;
};

// Linear interpolation of release dates between anchor milestones.
Date interpolate(std::span<const Anchor> anchors, int version) {
  assert(!anchors.empty());
  if (version <= anchors.front().version) return anchors.front().date;
  for (std::size_t i = 1; i < anchors.size(); ++i) {
    if (version <= anchors[i].version) {
      const Anchor& a = anchors[i - 1];
      const Anchor& b = anchors[i];
      const int span_versions = b.version - a.version;
      const int span_days = b.date - a.date;
      const int offset = version - a.version;
      return a.date + span_days * offset / span_versions;
    }
  }
  // Extrapolate past the last anchor at the final cadence.
  const Anchor& a = anchors[anchors.size() - 2];
  const Anchor& b = anchors.back();
  const int per_version = (b.date - a.date) / (b.version - a.version);
  return b.date + per_version * (version - b.version);
}

// Chrome milestone anchors (public release history).
constexpr std::array<Anchor, 11> kChromeAnchors = {{
    {59, Date::from_ymd(2017, 6, 5)},
    {70, Date::from_ymd(2018, 10, 16)},
    {80, Date::from_ymd(2020, 2, 4)},
    {90, Date::from_ymd(2021, 4, 14)},
    {100, Date::from_ymd(2022, 3, 29)},
    {110, Date::from_ymd(2023, 2, 7)},
    {114, Date::from_ymd(2023, 5, 30)},
    {115, Date::from_ymd(2023, 7, 12)},
    {117, Date::from_ymd(2023, 9, 12)},
    {118, Date::from_ymd(2023, 10, 10)},
    {119, Date::from_ymd(2023, 10, 24)},
}};

// Firefox milestone anchors.
constexpr std::array<Anchor, 9> kFirefoxAnchors = {{
    {46, Date::from_ymd(2016, 4, 26)},
    {60, Date::from_ymd(2018, 5, 9)},
    {80, Date::from_ymd(2020, 8, 25)},
    {100, Date::from_ymd(2022, 5, 3)},
    {114, Date::from_ymd(2023, 6, 6)},
    {115, Date::from_ymd(2023, 7, 4)},
    {117, Date::from_ymd(2023, 8, 29)},
    {118, Date::from_ymd(2023, 9, 26)},
    {119, Date::from_ymd(2023, 10, 24)},
}};

}  // namespace

std::string_view engine_name(Engine e) noexcept {
  switch (e) {
    case Engine::kBlink:
      return "Blink";
    case Engine::kGecko:
      return "Gecko";
    case Engine::kEdgeHtml:
      return "EdgeHTML";
    case Engine::kWebKit:
      return "WebKit";
  }
  return "Blink";
}

ReleaseDatabase::ReleaseDatabase() {
  // Chrome 59-119 (Blink).
  for (int v = 59; v <= 119; ++v) {
    releases_.push_back(BrowserRelease{ua::Vendor::kChrome, v, Engine::kBlink,
                                       v, interpolate(kChromeAnchors, v)});
  }
  // Firefox 46-119 (Gecko).
  for (int v = 46; v <= 119; ++v) {
    releases_.push_back(BrowserRelease{ua::Vendor::kFirefox, v, Engine::kGecko,
                                       v, interpolate(kFirefoxAnchors, v)});
  }
  // EdgeHTML 17-19.
  releases_.push_back(BrowserRelease{ua::Vendor::kEdgeLegacy, 17,
                                     Engine::kEdgeHtml, 17,
                                     Date::from_ymd(2018, 4, 30)});
  releases_.push_back(BrowserRelease{ua::Vendor::kEdgeLegacy, 18,
                                     Engine::kEdgeHtml, 18,
                                     Date::from_ymd(2018, 11, 13)});
  releases_.push_back(BrowserRelease{ua::Vendor::kEdgeLegacy, 19,
                                     Engine::kEdgeHtml, 19,
                                     Date::from_ymd(2019, 5, 1)});
  // Chromium Edge 79-119: tracks the same-numbered Chrome release with
  // roughly a week of lag.
  for (int v = 79; v <= 119; ++v) {
    releases_.push_back(BrowserRelease{ua::Vendor::kEdge, v, Engine::kBlink, v,
                                       interpolate(kChromeAnchors, v) + 7});
  }
}

const ReleaseDatabase& ReleaseDatabase::instance() {
  static const ReleaseDatabase db;
  return db;
}

std::vector<const BrowserRelease*> ReleaseDatabase::available_on(
    Date date) const {
  std::vector<const BrowserRelease*> out;
  for (const auto& r : releases_) {
    if (r.release_date <= date) out.push_back(&r);
  }
  return out;
}

const BrowserRelease* ReleaseDatabase::find(ua::Vendor vendor,
                                            int version) const {
  for (const auto& r : releases_) {
    if (r.vendor == vendor && r.version == version) return &r;
  }
  // Tolerate the Edge/EdgeLegacy split when callers pass a parsed label.
  if (vendor == ua::Vendor::kEdge && version < 20) {
    return find(ua::Vendor::kEdgeLegacy, version);
  }
  return nullptr;
}

const BrowserRelease* ReleaseDatabase::latest(ua::Vendor vendor,
                                              Date date) const {
  const BrowserRelease* best = nullptr;
  for (const auto& r : releases_) {
    if (r.vendor != vendor || r.release_date > date) continue;
    if (best == nullptr || r.version > best->version) best = &r;
  }
  return best;
}

}  // namespace bp::browser
