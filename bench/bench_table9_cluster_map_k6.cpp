// Reproduces Table 9 (Appendix-2): the user-agent -> cluster map with a
// deliberately sub-optimal k=6, showing coarser, less useful groupings.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace bp;
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 205'000;

  std::printf("=== Table 9: user-agents assigned to clusters (k=6) ===\n");
  const auto data = benchmark_support::make_training_dataset(n);

  core::PolygraphConfig config = core::PolygraphConfig::production();
  config.k = 6;
  const auto trained = benchmark_support::train_production(data, config);

  std::printf("clustering accuracy at k=6: %.2f%%\n\n",
              100.0 * trained.summary.clustering_accuracy);

  // At k=6 the paper's anchor numbering does not apply; sort clusters by
  // their oldest member so the table reads oldest -> newest.
  std::vector<std::pair<int, std::string>> rows;
  for (std::size_t cluster = 0; cluster < config.k; ++cluster) {
    const auto& uas = trained.model.cluster_table().user_agents_in(cluster);
    if (uas.empty()) continue;
    int oldest = 1 << 30;
    for (const auto& ua : uas) oldest = std::min(oldest, ua.major_version);
    rows.emplace_back(oldest, benchmark_support::describe_cluster_uas(uas));
  }
  std::sort(rows.begin(), rows.end());

  util::TextTable table({"Cluster", "user-agents"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.add_row({std::to_string(i), rows[i].second});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nNote how k=6 fuses browser eras the k=11 model separates —\n"
      "Table 3's bench shows the production partition.\n");
  return 0;
}
